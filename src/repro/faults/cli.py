"""``repro faults`` subcommand: fault-injection runs and campaign repair.

Runs the fault-tolerant SpMV driver under a named or file-based
:class:`~repro.faults.plan.FaultPlan` over a selection of suite
matrices, printing per-run recovery counters and verifying the result
vector against the fault-free computation.  Exit status is non-zero
when any run fails verification — CI keys off this for the fault
matrix.  Also hosts the campaign repair path (``--repair``), which
quarantines corrupt records from a campaign JSONL file.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence, TextIO

from ..cliutil import (
    add_json_flag,
    add_output_flag,
    add_supervise_flags,
    open_output,
    policy_from_args,
    resolve_format,
)
from .plan import EXAMPLE_PLANS, load_plan

__all__ = [
    "faults_main",
    "build_faults_parser",
    "configure_faults_parser",
    "run_faults",
]


def configure_faults_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro faults`` arguments to an existing parser."""
    p.add_argument(
        "--plan",
        type=str,
        default="lossy",
        help="named fault plan or a JSON plan file (default: lossy)",
    )
    p.add_argument(
        "--list-plans", action="store_true", help="print the named plans and exit"
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the plan's seed"
    )
    p.add_argument(
        "--ids",
        type=str,
        default="2,7",
        help="comma-separated Table I matrix ids (default: 2,7)",
    )
    p.add_argument(
        "--cores", type=int, default=8, help="units of execution (default 8)"
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="matrix-size scale; 1.0 = published UFL sizes (default 0.1)",
    )
    p.add_argument(
        "--iterations", type=int, default=4, help="SpMV repetitions (default 4)"
    )
    p.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="simulated-time budget per run in seconds (default 10.0)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard the matrices over (default 1 = serial)",
    )
    p.add_argument(
        "--repair",
        type=str,
        default="",
        metavar="JSONL",
        help="repair a campaign file (quarantine corrupt lines) and exit",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    add_supervise_flags(p)
    add_json_flag(p)
    add_output_flag(p)


def _fault_run_task(opts: tuple, mid: int) -> dict:
    """One fault-tolerant run (module-level so worker pools can pickle it)."""
    plan, cores, scale, iterations, budget = opts
    from ..core.experiment import SpMVExperiment
    from ..sparse.suite import build_matrix, entry_by_id

    entry = entry_by_id(mid)
    exp = SpMVExperiment(build_matrix(mid, scale=scale), name=entry.name)
    result = exp.run_fault_tolerant(
        n_cores=cores, plan=plan, iterations=iterations, time_budget=budget
    )
    c = result.counters
    return {
        "matrix": result.matrix_name,
        "cores": result.n_cores,
        "plan": f"{result.plan_name}/{result.plan_seed}",
        "makespan_s": result.makespan,
        "mflops": result.mflops,
        "drops": c.get("drop", 0),
        "corrupt": c.get("corrupt", 0),
        "retries": c.get("retries", 0),
        "deaths": len(result.failed_ues),
        "repartitions": c.get("repartitions", 0),
        "verified": result.verified,
    }


def build_faults_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro faults",
        description="Run fault-injection experiments with the fault-tolerant "
        "SpMV driver, or repair a damaged campaign file.",
    )
    configure_faults_parser(p)
    return p


def _repair(path_str: str, fmt: str, out: TextIO) -> int:
    from ..core.campaign import Campaign

    path = Path(path_str)
    if not path.exists():
        raise SystemExit(f"repro faults: no such campaign file: {path}")
    if path.suffix != ".jsonl":
        raise SystemExit(f"repro faults: --repair expects a .jsonl file, got {path}")
    campaign = Campaign(path.stem, path.parent)
    kept, quarantined = campaign.repair()
    if fmt == "json":
        print(
            json.dumps(
                {"file": str(path), "kept": kept, "quarantined": quarantined}
            ),
            file=out,
        )
    else:
        print(
            f"{path}: kept {kept} record(s), quarantined {quarantined} "
            f"corrupt line(s)"
            + (
                f" to {path.with_name(path.stem + '.quarantine.jsonl')}"
                if quarantined
                else ""
            ),
            file=out,
        )
    return 0


def run_faults(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro faults`` from a parsed namespace."""
    fmt = resolve_format(args)
    with open_output(args, out) as stream:
        if args.list_plans:
            for name, plan in EXAMPLE_PLANS.items():
                knobs = []
                if plan.drop_rate:
                    knobs.append(f"drop={plan.drop_rate}")
                if plan.duplicate_rate:
                    knobs.append(f"dup={plan.duplicate_rate}")
                if plan.corrupt_rate:
                    knobs.append(f"corrupt={plan.corrupt_rate}")
                if plan.n_random_failures or plan.core_failures:
                    knobs.append(
                        f"failures={plan.n_random_failures + len(plan.core_failures)}"
                    )
                if plan.n_random_stalls or plan.core_stalls:
                    knobs.append(
                        f"stalls={plan.n_random_stalls + len(plan.core_stalls)}"
                    )
                if plan.mc_stall_bursts:
                    knobs.append(f"mc_bursts={len(plan.mc_stall_bursts)}")
                if plan.link_degradations:
                    knobs.append(f"degraded_links={len(plan.link_degradations)}")
                print(f"{name:10s} {', '.join(knobs) or 'faultless'}", file=stream)
            return 0

        if args.repair:
            return _repair(args.repair, fmt, stream)

        # Heavy imports deferred so --list-plans / --repair stay snappy.
        from functools import partial

        from ..core.parallel import parallel_map
        from ..core.report import banner, format_table

        try:
            plan = load_plan(args.plan)
        except ValueError as exc:
            raise SystemExit(f"repro faults: {exc}") from exc
        if args.seed is not None:
            plan = plan.with_seed(args.seed)
        if args.cores < 1:
            raise SystemExit(f"--cores must be >= 1, got {args.cores}")
        if not 0 < args.scale <= 1.0:
            raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
        workers = getattr(args, "workers", 1)
        if workers < 1:
            raise SystemExit(f"--workers must be >= 1, got {workers}")
        try:
            ids = [int(tok) for tok in args.ids.split(",") if tok.strip()]
        except ValueError as exc:
            raise SystemExit(f"--ids must be comma-separated integers: {exc}") from exc
        if not ids:
            raise SystemExit("no matrices selected; check --ids")

        opts = (plan, args.cores, args.scale, args.iterations, args.budget)
        task = partial(_fault_run_task, opts)
        policy = policy_from_args(args)
        if policy is not None:
            # Supervised path: crashed/hung runs are retried per policy;
            # 'serial'/'model' degrade to an in-parent rerun (fault runs
            # need the event-driven runtime, so there is no model rung).
            from ..core.supervise import supervised_parallel_map

            fallbacks = (
                [("serial", task)]
                if policy.on_failure in ("serial", "model")
                else []
            )
            rows = supervised_parallel_map(
                task, ids, workers, policy,
                identity=lambda mid: f"faults:{mid}",
                fallbacks=fallbacks,
            )
        else:
            rows = parallel_map(task, ids, workers)
        all_verified = all(row["verified"] for row in rows)
        for row in rows:
            row["verified"] = "yes" if row["verified"] else "NO"

        if fmt == "json":
            print(json.dumps(rows), file=stream)
        else:
            print(
                banner(
                    f"Fault-tolerant SpMV under plan {plan.name!r} (seed {plan.seed})"
                ),
                file=stream,
            )
            print(
                format_table(
                    rows,
                    [
                        "matrix",
                        "cores",
                        "plan",
                        "makespan_s",
                        "mflops",
                        "drops",
                        "corrupt",
                        "retries",
                        "deaths",
                        "repartitions",
                        "verified",
                    ],
                ),
                file=stream,
            )
            print(
                "\nall runs verified against the fault-free reference"
                if all_verified
                else "\nVERIFICATION FAILED for at least one run",
                file=stream,
            )
        return 0 if all_verified else 1


def faults_main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    """Entry point for ``repro faults``; returns a process exit code."""
    return run_faults(build_faults_parser().parse_args(argv), out=out)
