"""Deterministic fault injection: a plan applied to one simulated run.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to one :class:`~repro.sim.Simulator` and answers the hook points wired
into the runtime layers:

- :meth:`message_fate` — called by :meth:`repro.rcce.mpb.Mailbox.deliver`
  for every envelope: deliver / drop / duplicate / corrupt;
- :meth:`corrupt_payload` — deterministic payload perturbation;
- :meth:`consume_stalls` — called by ``RCCEComm.compute`` to stretch a
  compute window by any stall scheduled inside it;
- :meth:`core_failures` / :meth:`on_core_failure` — the kill schedule
  the runtime arms at boot;
- :meth:`link_degradations` — static mesh degradations applied at boot.

All randomness comes from per-category ``random.Random`` streams seeded
from the plan (CRC32-derived, stable across platforms and runs), and
every injected fault is appended to :attr:`events` with its simulated
time — two runs of the same (program, plan) pair produce byte-identical
event logs, which the determinism checker (DET900) verifies for faulty
runs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Counter as TCounter, Dict, List, Optional, Tuple
from collections import Counter

import numpy as np

from ..sim import Simulator
from .plan import CoreFailure, CoreStall, FaultPlan

__all__ = ["FaultEvent", "FaultInjector", "derive_seed"]


def derive_seed(seed: int, category: str) -> int:
    """Stable per-category sub-seed (CRC32 mix, platform-independent)."""
    return (seed * 0x9E3779B1 + zlib.crc32(category.encode("utf-8"))) & 0xFFFFFFFF


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, stamped with simulated time."""

    time: float
    kind: str      #: drop | duplicate | corrupt | blackhole | core_failure | core_stall
    detail: Tuple  #: kind-specific fields, hashable for exact comparison


class FaultInjector:
    """Applies one plan to one run; fully deterministic per seed."""

    def __init__(
        self,
        plan: FaultPlan,
        n_ues: int,
        sim: Simulator,
        tracer: Optional[Any] = None,
    ) -> None:
        if n_ues < 1:
            raise ValueError(f"n_ues must be >= 1, got {n_ues}")
        self.plan = plan
        self.n_ues = n_ues
        self.sim = sim
        #: optional :class:`repro.obs.Tracer`: every injected fault is
        #: also emitted as an instant event in the "fault" category.
        self.tracer = tracer
        self._msg_rng = random.Random(derive_seed(plan.seed, "messages"))
        self._payload_rng = random.Random(derive_seed(plan.seed, "payloads"))
        #: every injected fault in injection order (the replayable schedule).
        self.events: List[FaultEvent] = []
        #: per-kind totals, merged into experiment/campaign records.
        self.counters: TCounter[str] = Counter()
        self._failures = self._resolve_failures()
        self._stalls = self._resolve_stalls()
        #: unconsumed transient stalls per UE, ordered by time.
        self._pending_stalls: Dict[int, List[CoreStall]] = {}
        for stall in self._stalls:
            self._pending_stalls.setdefault(stall.ue, []).append(stall)
        for stalls in self._pending_stalls.values():
            stalls.sort(key=lambda s: s.time)

    # -- schedule resolution (construction time, deterministic) ------------

    def _resolve_failures(self) -> List[CoreFailure]:
        failures = [cf for cf in self.plan.core_failures if cf.ue < self.n_ues]
        if self.plan.n_random_failures:
            rng = random.Random(derive_seed(self.plan.seed, "core-failures"))
            candidates = [
                ue
                for ue in range(self.n_ues)
                if ue not in self.plan.protected_ues
                and ue not in {cf.ue for cf in failures}
            ]
            t0, t1 = self.plan.failure_window
            n = min(self.plan.n_random_failures, len(candidates))
            for ue in rng.sample(candidates, n):
                failures.append(CoreFailure(ue, rng.uniform(t0, t1)))
        failures.sort(key=lambda cf: (cf.time, cf.ue))
        return failures

    def _resolve_stalls(self) -> List[CoreStall]:
        stalls = [s for s in self.plan.core_stalls if s.ue < self.n_ues]
        if self.plan.n_random_stalls:
            rng = random.Random(derive_seed(self.plan.seed, "core-stalls"))
            t0, t1 = self.plan.stall_window
            for _ in range(self.plan.n_random_stalls):
                stalls.append(
                    CoreStall(
                        rng.randrange(self.n_ues),
                        rng.uniform(t0, t1),
                        self.plan.stall_duration,
                    )
                )
        stalls.sort(key=lambda s: (s.time, s.ue))
        return stalls

    # -- schedule introspection --------------------------------------------

    def core_failures(self) -> List[Tuple[int, float]]:
        """(ue, time) kill schedule the runtime arms at boot."""
        return [(cf.ue, cf.time) for cf in self._failures]

    def core_stalls(self) -> List[Tuple[int, float, float]]:
        """(ue, time, duration) of every resolved transient stall."""
        return [(s.ue, s.time, s.duration) for s in self._stalls]

    def link_degradations(self) -> List[Tuple[Tuple[int, int], Tuple[int, int], float]]:
        """(src_tile, dst_tile, factor) degradations applied at boot."""
        return [
            (d.src_tile, d.dst_tile, d.factor) for d in self.plan.link_degradations
        ]

    def mc_stall_bursts(self) -> List[Tuple[float, float, float]]:
        """(start, end, factor) memory-controller stall windows."""
        return [(b.start, b.end, b.factor) for b in self.plan.mc_stall_bursts]

    def schedule_signature(self) -> List[Tuple]:
        """Hashable rendering of the event log (for replay comparison)."""
        return [(e.time, e.kind, e.detail) for e in self.events]

    # -- hooks --------------------------------------------------------------

    def _record(self, kind: str, detail: Tuple) -> None:
        self.events.append(FaultEvent(self.sim.now, kind, detail))
        self.counters[kind] += 1
        tr = self.tracer
        if tr:
            tr.instant(f"fault.{kind}", tid=detail[0] if detail else 0, cat="fault",
                       detail=list(detail))
            tr.metrics.counter("faults.injected", kind=kind).inc()

    def message_fate(self, source: int, dest: int, tag: int, now: float) -> str:
        """Fate of one mailbox delivery: deliver | drop | duplicate | corrupt.

        One uniform draw per delivery keeps the stream aligned across
        replays regardless of which fate fires.
        """
        p = self.plan
        if p.drop_rate == 0.0 and p.duplicate_rate == 0.0 and p.corrupt_rate == 0.0:
            return "deliver"
        r = self._msg_rng.random()
        if r < p.drop_rate:
            self._record("drop", (source, dest, tag))
            return "drop"
        if r < p.drop_rate + p.duplicate_rate:
            self._record("duplicate", (source, dest, tag))
            return "duplicate"
        if r < p.drop_rate + p.duplicate_rate + p.corrupt_rate:
            self._record("corrupt", (source, dest, tag))
            return "corrupt"
        return "deliver"

    def corrupt_payload(self, payload: Any) -> Any:
        """Deterministically perturb a payload (models a flipped line).

        NumPy arrays get one element perturbed, numbers are offset,
        bytes get a flipped bit, tuples/lists have one element corrupted
        recursively.  Unrecognized objects are replaced with a marker so
        corruption is never silently a no-op.
        """
        rng = self._payload_rng
        if isinstance(payload, np.ndarray):
            out = payload.copy()
            if out.size:
                idx = rng.randrange(out.size)
                flat = out.reshape(-1)
                if np.issubdtype(out.dtype, np.floating):
                    flat[idx] = flat[idx] * 1.5 + 1.0
                elif np.issubdtype(out.dtype, np.integer):
                    flat[idx] = flat[idx] ^ 0x5A
                elif out.dtype == np.bool_:
                    flat[idx] = ~flat[idx]
            return out
        if isinstance(payload, bool):
            return not payload
        if isinstance(payload, int):
            return payload ^ (1 << rng.randrange(16))
        if isinstance(payload, float):
            return payload * 1.5 + 1.0
        if isinstance(payload, (bytes, bytearray)):
            if not payload:
                return b"\x5a"
            data = bytearray(payload)
            idx = rng.randrange(len(data))
            data[idx] ^= 0x5A
            return bytes(data)
        if isinstance(payload, str):
            return payload + "\x00corrupt"
        if isinstance(payload, (tuple, list)):
            if not payload:
                return payload
            idx = rng.randrange(len(payload))
            items = list(payload)
            items[idx] = self.corrupt_payload(items[idx])
            return tuple(items) if isinstance(payload, tuple) else items
        return ("__corrupted__", payload)

    def consume_stalls(self, ue: int, now: float, window: float) -> float:
        """Total stall seconds injected into a compute window.

        Consumes (once) every stall for ``ue`` scheduled at or before the
        end of the window — a stall scheduled while the core was blocked
        elsewhere fires on its next compute, which keeps the schedule
        deterministic without preempting blocked processes.
        """
        pending = self._pending_stalls.get(ue)
        if not pending:
            return 0.0
        extra = 0.0
        while pending and pending[0].time <= now + window:
            stall = pending.pop(0)
            extra += stall.duration
            self._record("core_stall", (ue, stall.duration))
        return extra

    def on_core_failure(self, ue: int, now: float) -> None:
        """Runtime notification that the planned kill fired."""
        self._record("core_failure", (ue,))

    def on_blackhole(self, source: int, dest: int, tag: int, now: float) -> None:
        """A message was delivered to a dead core's mailbox."""
        self._record("blackhole", (source, dest, tag))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector plan={self.plan.name!r} seed={self.plan.seed} "
            f"events={len(self.events)}>"
        )
