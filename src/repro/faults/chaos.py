"""``repro chaos``: OS-level chaos harness for the supervised runtime.

The fault plans of :mod:`repro.faults.plan` model failures *inside* the
simulated chip; this harness attacks the reproduction pipeline itself
with the failures a long campaign meets on a real machine:

- **SIGKILL** of live pool workers — transiently (first attempt only)
  and persistently (every attempt: a *poison point*);
- **SIGSTOP** of a live worker, hanging it until the supervisor's
  ``task_timeout`` SIGKILLs it;
- **store corruption** — bit-flipped and truncated content-store
  entries, which integrity verification must quarantine, not trust;
- **ENOSPC** on store writes, which must warn once and degrade to
  recomputation, never crash or silently drop.

The schedule is drawn from ``--seed`` (deterministic per seed) and
injected through :data:`repro.core.supervise.CHAOS_ENV`, generalizing
the single-identity ``REPRO_FAULT_WORKER_CRASH`` hook.  The harness
then asserts the supervised runtime's core invariant:

1. the campaign completes — no ``CampaignWorkerCrash`` escapes;
2. every surviving record is **bitwise identical** to the clean serial
   run's record for the same point;
3. the quarantined set is **exactly** the injected poison set — no
   healthy point is quarantined, no poison point sneaks a record in;
4. ``supervise.*`` metrics account for the injected faults (timeouts
   cover the SIGSTOPs, quarantines equal the poison count);
5. corrupt store entries read as misses and land in ``corrupt/``;
   ENOSPC surfaces exactly one warning.

Exit status is non-zero on any violation; CI runs seeds 0..2.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

import numpy as np

from ..cliutil import add_json_flag, add_output_flag, open_output, resolve_format

__all__ = [
    "build_chaos_schedule",
    "build_chaos_parser",
    "configure_chaos_parser",
    "run_chaos",
    "chaos_main",
]


def configure_chaos_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro chaos`` arguments to an existing parser."""
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the fault schedule (default 0); every seed is a "
        "different deterministic mix of kills, stops and poison points",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="supervised pool width for the chaos campaign (default 2)",
    )
    p.add_argument(
        "--ids",
        type=str,
        default="24,30",
        help="comma-separated Table I matrix ids (default: 24,30)",
    )
    p.add_argument(
        "--cores",
        type=str,
        default="1,4",
        help="comma-separated core counts of the campaign grid (default: 1,4)",
    )
    p.add_argument(
        "--configs",
        type=str,
        default="conf0,conf1",
        help="comma-separated chip configs of the grid (default: conf0,conf1)",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="matrix-size scale of the campaign (default 0.05)",
    )
    p.add_argument(
        "--iterations", type=int, default=2, help="SpMV repetitions (default 2)"
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=10.0,
        help="per-attempt wall-clock budget; bounds how long a SIGSTOPped "
        "worker can hang (default 10.0)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="in-pool retries before quarantine (default 2)",
    )
    p.add_argument(
        "--machine",
        type=str,
        default="scc-48",
        help="machine model the chaos campaign runs on (default scc-48; "
        "see docs/MACHINES.md)",
    )
    p.add_argument(
        "--skip-store-leg",
        action="store_true",
        help="skip the store corruption / ENOSPC leg",
    )
    p.add_argument(
        "--serve",
        action="store_true",
        help="also attack a live campaign server: SIGKILL/SIGSTOP its "
        "pool workers mid-job, poison points, then bit-flip a store "
        "entry and resubmit — the server must survive it all "
        "(docs/SERVING.md)",
    )
    p.add_argument(
        "--quarantine-records",
        type=str,
        default="",
        metavar="JSONL",
        help="write the quarantined records to this file (CI artifact)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    add_json_flag(p)
    add_output_flag(p)


def build_chaos_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro chaos",
        description="Inject OS-level faults (SIGKILL/SIGSTOP of workers, "
        "store corruption, ENOSPC) into a supervised campaign and verify "
        "the self-healing invariants.",
    )
    configure_chaos_parser(p)
    return p


def build_chaos_schedule(
    keys: List[str], seed: int
) -> Tuple[Dict[str, dict], List[str], List[str]]:
    """The seeded fault schedule over campaign point keys.

    Returns ``(spec, transient_keys, poison_keys)`` where ``spec`` is
    the :data:`~repro.core.supervise.CHAOS_ENV` JSON object: a couple
    of transient SIGKILLs (first attempt only), one transient SIGSTOP,
    and one or two persistent poison kills.  All targets are distinct;
    a pure function of ``(keys, seed)``.
    """
    rng = random.Random(seed)
    n_transient_kills = min(2, max(0, len(keys) - 3))
    n_stops = 1 if len(keys) >= 4 else 0
    n_poison = 2 if len(keys) >= 8 else 1
    picked = rng.sample(sorted(keys), n_transient_kills + n_stops + n_poison)
    spec: Dict[str, dict] = {}
    transient: List[str] = []
    poison: List[str] = []
    for key in picked[:n_transient_kills]:
        spec[key] = {"action": "kill", "attempts": [1]}
        transient.append(key)
    for key in picked[n_transient_kills : n_transient_kills + n_stops]:
        spec[key] = {"action": "stop", "attempts": [1]}
        transient.append(key)
    for key in picked[n_transient_kills + n_stops :]:
        spec[key] = {"action": "kill", "attempts": "all"}
        poison.append(key)
    return spec, transient, poison


@contextmanager
def _env(name: str, value: Optional[str]) -> Iterator[None]:
    """Set/unset one environment variable, restoring the old value."""
    old = os.environ.get(name)
    try:
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


def _parse_int_list(raw: str, flag: str) -> List[int]:
    try:
        vals = [int(tok) for tok in raw.split(",") if tok.strip()]
    except ValueError as exc:
        raise SystemExit(f"{flag} must be comma-separated integers: {exc}") from exc
    if not vals:
        raise SystemExit(f"{flag} selected nothing")
    return vals


def _campaign_lines(path: Path) -> Dict[str, str]:
    """Raw record line per resume key (the bitwise-comparison unit)."""
    lines: Dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line.strip():
                continue
            rec = json.loads(line)
            lines[rec["_key"]] = line
    return lines


def _run_worker_leg(args: argparse.Namespace, workdir: Path) -> dict:
    """Clean serial reference vs supervised run under the chaos schedule."""
    from ..core.campaign import Campaign, CampaignWorkerCrash
    from ..core.supervise import CHAOS_ENV, SupervisePolicy

    ids = _parse_int_list(args.ids, "--ids")
    cores = _parse_int_list(args.cores, "--cores")
    configs = tuple(tok for tok in args.configs.split(",") if tok.strip())
    points = Campaign.grid(ids, cores, configs=configs)
    keys = [pt.key() for pt in points]
    spec, transient, poison = build_chaos_schedule(keys, args.seed)

    common = dict(
        output_dir=workdir,
        scale=args.scale,
        iterations=args.iterations,
        mode="model",
        machine=getattr(args, "machine", "scc-48"),
    )
    with _env(CHAOS_ENV, None):
        reference = Campaign("chaos_reference", **common)
        reference.run(points, workers=1)
    ref_lines = _campaign_lines(reference.path)

    policy = SupervisePolicy(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        backoff_base=0.01,
        seed=args.seed,
        on_failure="quarantine",
    )
    chaos = Campaign("chaos_run", **common)
    violations: List[str] = []
    with _env(CHAOS_ENV, json.dumps(spec)):
        try:
            chaos.run(points, workers=args.workers, policy=policy)
        except CampaignWorkerCrash as exc:  # invariant 1
            violations.append(f"CampaignWorkerCrash escaped the supervisor: {exc}")
    metrics = getattr(chaos, "last_supervise", {})

    chaos_lines = _campaign_lines(chaos.path) if chaos.path.exists() else {}
    quarantined = {
        key
        for key, line in chaos_lines.items()
        if json.loads(line).get("status") == "quarantined"
    }

    # invariant 2: surviving records bitwise identical to the reference.
    for key, line in sorted(chaos_lines.items()):
        if key in quarantined:
            continue
        if key not in ref_lines:
            violations.append(f"chaos run produced an unknown point {key!r}")
        elif line != ref_lines[key]:
            violations.append(
                f"surviving record for {key!r} differs from the clean "
                f"serial run:\n  ref:   {ref_lines[key]}\n  chaos: {line}"
            )
    missing = set(ref_lines) - set(chaos_lines)
    if missing:
        violations.append(f"chaos run is missing points: {sorted(missing)}")

    # invariant 3: quarantined set == injected poison set.
    if quarantined != set(poison):
        violations.append(
            f"quarantined set {sorted(quarantined)} != injected poison "
            f"set {sorted(poison)}"
        )

    # invariant 4: the metrics account for the injected faults.
    stops = sum(1 for entry in spec.values() if entry["action"] == "stop")
    if metrics.get("supervise.timeouts", 0) < stops:
        violations.append(
            f"supervise.timeouts={metrics.get('supervise.timeouts', 0)} "
            f"does not cover the {stops} injected SIGSTOP(s)"
        )
    if metrics.get("supervise.quarantines", 0) != len(poison):
        violations.append(
            f"supervise.quarantines={metrics.get('supervise.quarantines', 0)} "
            f"!= {len(poison)} poison point(s)"
        )
    if transient and metrics.get("supervise.retries", 0) < len(transient):
        violations.append(
            f"supervise.retries={metrics.get('supervise.retries', 0)} cannot "
            f"cover {len(transient)} transient fault(s)"
        )

    quarantine_records = [
        json.loads(line) for key, line in sorted(chaos_lines.items()) if key in quarantined
    ]
    return {
        "schedule": spec,
        "transient": sorted(transient),
        "poison": sorted(poison),
        "points": len(points),
        "survivors_checked": len(chaos_lines) - len(quarantined),
        "quarantined": sorted(quarantined),
        "quarantine_records": quarantine_records,
        "metrics": metrics,
        "violations": violations,
    }


def _run_store_leg(args: argparse.Namespace, workdir: Path) -> dict:
    """Bit-flip / truncate / ENOSPC the content store; expect quarantines."""
    from ..store import STORE_ENOSPC_ENV, ContentStore, digest_parts

    rng = random.Random(args.seed)
    violations: List[str] = []
    store = ContentStore(root=workdir / "cache", namespace="chaos")

    with _env("REPRO_NO_DISK_CACHE", None):
        # bit-flipped JSON entry -> miss + quarantined, never trusted.
        key = digest_parts("chaos", "json", args.seed)
        store.put_json(key, {"answer": 42, "seed": args.seed})
        path = store.path_for(key, "json")
        blob = bytearray(path.read_bytes())
        pos = rng.randrange(len(blob))
        blob[pos] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(blob))
        if store.get_json(key) is not None:
            violations.append("bit-flipped JSON entry was served as valid")
        if path.exists():
            violations.append("bit-flipped JSON entry was not removed from the store")
        if not (store.corrupt_dir / path.name).exists():
            violations.append("bit-flipped JSON entry was not quarantined to corrupt/")

        # truncated array bundle -> miss + quarantined.
        akey = digest_parts("chaos", "npz", args.seed)
        store.put_arrays(akey, data=np.arange(256, dtype=np.float64))
        apath = store.path_for(akey, "npz")
        raw = apath.read_bytes()
        apath.write_bytes(raw[: max(1, len(raw) // 2)])
        if store.get_arrays(akey) is not None:
            violations.append("truncated npz entry was served as valid")
        if not (store.corrupt_dir / apath.name).exists():
            violations.append("truncated npz entry was not quarantined to corrupt/")

        # bit-flipped array payload -> rejected (zip CRC or sha256 seal).
        bkey = digest_parts("chaos", "npz-flip", args.seed)
        store.put_arrays(bkey, data=np.arange(64, dtype=np.int64))
        bpath = store.path_for(bkey, "npz")
        blob = bytearray(bpath.read_bytes())
        blob[len(blob) // 2] ^= 1 << rng.randrange(8)
        bpath.write_bytes(bytes(blob))
        if store.get_arrays(bkey) is not None:
            violations.append("bit-flipped npz entry was served as valid")
        if not (store.corrupt_dir / bpath.name).exists():
            violations.append("bit-flipped npz entry was not quarantined to corrupt/")

        # ENOSPC: exactly one warning, no crash, entry absent.
        ekey = digest_parts("chaos", "enospc", args.seed)
        with _env(STORE_ENOSPC_ENV, "1"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                store.put_json(ekey, {"doomed": True})
                store.put_json(ekey, {"doomed": True})
        enospc_warnings = [
            w for w in caught if "no space left" in str(w.message).lower()
        ]
        if len(enospc_warnings) != 1:
            violations.append(
                f"expected exactly one ENOSPC warning, saw {len(enospc_warnings)}"
            )
        if store.get_json(ekey) is not None:
            violations.append("ENOSPC-failed write still produced an entry")

    return {
        "corrupt_quarantined": sorted(
            p.name for p in store.corrupt_dir.glob("*")
        ) if store.corrupt_dir.exists() else [],
        "violations": violations,
    }


def _run_serve_leg(args: argparse.Namespace, workdir: Path) -> dict:
    """Chaos against a live campaign server (``repro chaos --serve``).

    The same schedule the worker leg injects — transient SIGKILLs, one
    SIGSTOP, persistent poison kills — lands on the *server's* pool
    workers mid-job, then a sealed store entry is bit-flipped and the
    job resubmitted.  Invariants:

    1. the submitted job completes (in-flight points finish or
       quarantine per the PR 7 ladder) and the server process answers
       ``/healthz`` throughout — it never dies;
    2. surviving records are bitwise-identical (canonical JSON) to a
       clean serial campaign of the same grid;
    3. the job's quarantined point set is exactly the poison set, and
       quarantines are *not* persisted to the store;
    4. after the bit flip, resubmission quarantines the corrupt entry,
       re-simulates exactly the flipped point plus the (retryable)
       poison points, and serves every other point from the store.
    """
    with _env("REPRO_NO_DISK_CACHE", None):
        return _serve_leg_impl(args, workdir)


def _serve_leg_impl(args: argparse.Namespace, workdir: Path) -> dict:
    from ..core.campaign import Campaign
    from ..core.supervise import CHAOS_ENV, SupervisePolicy
    from ..serve.client import ServeClient
    from ..serve.protocol import CampaignSpec, point_store_key
    from ..serve.server import STORE_NAMESPACE, CampaignServer
    from ..store import ContentStore

    ids = _parse_int_list(args.ids, "--ids")
    cores = _parse_int_list(args.cores, "--cores")
    configs = tuple(tok for tok in args.configs.split(",") if tok.strip())
    violations: List[str] = []

    spec = CampaignSpec(
        ids=tuple(ids),
        core_counts=tuple(cores),
        configs=configs,
        machine=getattr(args, "machine", "scc-48"),
        scale=args.scale,
        iterations=args.iterations,
        mode="model",
    )
    points = spec.points()
    ctx = spec.context()
    keys = [pt.key() for pt in points]
    schedule, transient, poison = build_chaos_schedule(keys, args.seed)

    # Clean serial reference (no chaos, no server).
    with _env(CHAOS_ENV, None):
        reference = Campaign(
            "serve_reference",
            output_dir=workdir,
            scale=args.scale,
            iterations=args.iterations,
            mode="model",
            machine=spec.machine,
        )
        reference.run(points, workers=1)
    ref_records = {}
    for key, line in _campaign_lines(reference.path).items():
        rec = json.loads(line)
        rec.pop("_key", None)
        ref_records[key] = json.dumps(rec, sort_keys=True)

    store_root = workdir / "serve-cache"
    policy = SupervisePolicy(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        backoff_base=0.01,
        seed=args.seed,
        on_failure="quarantine",
    )
    server = CampaignServer(
        data_dir=workdir / "serve-data",
        workers=args.workers,
        policy=policy,
        store_root=store_root,
    )
    quarantined_keys: List[str] = []
    resubmit_counts: Dict[str, object] = {}
    try:
        with _env(CHAOS_ENV, json.dumps(schedule)):
            server.start()
            client = ServeClient(server.url)
            if not client.healthz().get("ok"):
                violations.append("healthz not ok before submission")
            job = client.submit(spec)
            try:
                result = client.wait(str(job["job_id"]), timeout=300.0)
            except TimeoutError as exc:
                violations.append(f"job did not complete under chaos: {exc}")
                result = {"records": [], "origins": []}
            if not client.healthz().get("ok"):
                violations.append("healthz not ok right after the chaos job")

        records = result.get("records") or []
        origins = result.get("origins") or []
        for pt, key, rec, origin in zip(points, keys, records, origins):
            if origin == "quarantined":
                quarantined_keys.append(key)
                continue
            got = json.dumps(rec, sort_keys=True)
            if got != ref_records.get(key):
                violations.append(
                    f"surviving served record for {key!r} differs from the "
                    f"clean serial run:\n  ref:   {ref_records.get(key)}"
                    f"\n  serve: {got}"
                )
        if sorted(quarantined_keys) != sorted(poison):
            violations.append(
                f"served quarantined set {sorted(quarantined_keys)} != "
                f"injected poison set {sorted(poison)}"
            )
        store = ContentStore(root=store_root, namespace=STORE_NAMESPACE)
        for pt, key in zip(points, keys):
            stored = store.get_json(point_store_key(pt, ctx)) is not None
            if key in poison and stored:
                violations.append(f"quarantined point {key!r} was persisted")
            if key not in poison and not stored:
                violations.append(f"surviving point {key!r} was not persisted")

        # Bit-flip one survivor's sealed entry, clear the chaos schedule,
        # resubmit: the flip must quarantine + re-simulate, everything
        # else must dedup, and the server must still be standing.
        flipped_key = None
        rng = random.Random(args.seed)
        for pt, key in zip(points, keys):
            if key not in poison:
                flipped_key = key
                path = store.path_for(point_store_key(pt, ctx), "json")
                blob = bytearray(path.read_bytes())
                blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
                path.write_bytes(bytes(blob))
                break
        with _env(CHAOS_ENV, None):
            job2 = client.submit(spec)
            try:
                result2 = client.wait(str(job2["job_id"]), timeout=300.0)
            except TimeoutError as exc:
                violations.append(f"resubmitted job did not complete: {exc}")
                result2 = {}
            resubmit_counts = {
                k: result2.get(k)
                for k in ("points", "dedup_hits", "simulated", "quarantined")
            }
            expected_simulated = 1 + len(poison)
            if result2.get("simulated") != expected_simulated:
                violations.append(
                    f"resubmission after the bit flip simulated "
                    f"{result2.get('simulated')} point(s), expected "
                    f"{expected_simulated} (flipped + retryable poison)"
                )
            if result2.get("quarantined"):
                violations.append(
                    "resubmission without chaos still quarantined "
                    f"{result2.get('quarantined')} point(s)"
                )
            for key, rec in zip(keys, result2.get("records") or []):
                if json.dumps(rec, sort_keys=True) != ref_records.get(key):
                    violations.append(
                        f"post-flip record for {key!r} differs from the "
                        f"clean serial run"
                    )
            health = client.healthz()
            if not health.get("ok"):
                violations.append("healthz not ok after the store bit flip leg")
            if flipped_key is not None and not health.get("store_corrupt"):
                violations.append(
                    "bit-flipped entry was not quarantined to corrupt/"
                )
    finally:
        server.stop()

    return {
        "schedule": schedule,
        "transient": sorted(transient),
        "poison": sorted(poison),
        "points": len(points),
        "quarantined": sorted(quarantined_keys),
        "resubmit": resubmit_counts,
        "violations": violations,
    }


def run_chaos(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro chaos`` from a parsed namespace."""
    from ..core.report import banner

    fmt = resolve_format(args)
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.task_timeout <= 0:
        raise SystemExit(f"--task-timeout must be > 0, got {args.task_timeout}")
    with open_output(args, out) as stream:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            workdir = Path(tmp)
            worker_leg = _run_worker_leg(args, workdir)
            store_leg = (
                {"violations": [], "skipped": True}
                if args.skip_store_leg
                else _run_store_leg(args, workdir)
            )
            serve_leg = (
                _run_serve_leg(args, workdir)
                if getattr(args, "serve", False)
                else {"violations": [], "skipped": True}
            )
        violations = (
            worker_leg["violations"]
            + store_leg["violations"]
            + serve_leg["violations"]
        )
        report = {
            "seed": args.seed,
            "workers": args.workers,
            "worker_leg": {
                k: v for k, v in worker_leg.items() if k != "violations"
            },
            "store_leg": {k: v for k, v in store_leg.items() if k != "violations"},
            "serve_leg": {k: v for k, v in serve_leg.items() if k != "violations"},
            "violations": violations,
            "ok": not violations,
        }
        if args.quarantine_records:
            with open(args.quarantine_records, "w", encoding="utf-8") as fh:
                for rec in worker_leg["quarantine_records"]:
                    fh.write(json.dumps(rec) + "\n")
        if fmt == "json":
            print(json.dumps(report, indent=2, sort_keys=True), file=stream)
        else:
            print(banner(f"Chaos harness (seed {args.seed})"), file=stream)
            sched = worker_leg["schedule"]
            for key in sorted(sched):
                entry = sched[key]
                print(
                    f"  inject {entry['action']:<5s} attempts="
                    f"{entry['attempts']} -> {key}",
                    file=stream,
                )
            print(
                f"\npoints: {worker_leg['points']}  "
                f"survivors bitwise-checked: {worker_leg['survivors_checked']}  "
                f"quarantined: {len(worker_leg['quarantined'])}",
                file=stream,
            )
            metrics = worker_leg["metrics"]
            if metrics:
                from ..obs.metrics import summary_prefix

                shown = ", ".join(
                    f"{k}={v:g}"
                    for k, v in summary_prefix(metrics, "supervise").items()
                )
                print(f"supervise: {shown}", file=stream)
            if not store_leg.get("skipped"):
                print(
                    f"store: quarantined {store_leg['corrupt_quarantined']}",
                    file=stream,
                )
            if not serve_leg.get("skipped"):
                print(
                    f"serve: {serve_leg['points']} points, quarantined "
                    f"{len(serve_leg['quarantined'])}, resubmit "
                    f"{serve_leg['resubmit']}",
                    file=stream,
                )
            if violations:
                print("\nINVARIANT VIOLATIONS:", file=stream)
                for v in violations:
                    print(f"  - {v}", file=stream)
            else:
                print(
                    "\nall invariants hold: survivors bitwise-identical to "
                    "the clean serial run; quarantined set == injected "
                    "poison set",
                    file=stream,
                )
        return 0 if not violations else 1


def chaos_main(
    argv: Optional[List[str]] = None, out: Optional[TextIO] = None
) -> int:
    """Entry point for ``repro chaos``; returns a process exit code."""
    return run_chaos(build_chaos_parser().parse_args(argv), out=out)
