"""Reliable messaging over the lossy MPB: acks, retries, dedup, checksums.

:class:`ReliableComm` wraps one :class:`~repro.rcce.api.RCCEComm` with
the protocol machinery a faulty mesh demands:

- every payload travels framed as ``(marker, src, seq, checksum, data)``
  — a CRC32 over (src, seq, data) catches injected corruption of *any*
  frame field, so a corrupted message is never acknowledged and never
  delivered (the sender simply retries);
- arrivals are acknowledged by an **auto-acker** installed on the owning
  mailbox (modelling the interrupt-driven message driver RCCE runs on
  each core): acks flow even while the UE process is busy computing,
  which is what prevents two ranks that are mid-protocol from livelocking
  on each other's unserviced retransmits;
- sends retransmit with exponential backoff in *simulated* time until
  acked; after each timeout the peer's liveness is probed, so a send to
  a crashed rank fails fast with :class:`PeerFailedError` instead of
  burning the full retry budget;
- receives deduplicate by (source, sequence) — duplicated deliveries and
  retransmits of already-acked frames are discarded, never re-delivered;
- :class:`FailureDetector` models the SCC system interface's core-status
  registers: a probe costs a round-trip of simulated time and reports
  whether the rank is dead, which is how the fault-tolerant SpMV driver
  confirms a suspicion raised by a collect timeout.

Everything advances only simulated time, so runs under a seeded
:class:`~repro.faults.plan.FaultPlan` stay bit-reproducible.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Any, Counter as TCounter, Dict, Optional, Tuple

import numpy as np

from ..rcce.api import CommGen, payload_bytes
from ..rcce.collectives import RESERVED_TAG_BASE
from ..rcce.errors import RCCEError, RCCETimeoutError
from ..rcce.mpb import Envelope, chunked_transfer_time

__all__ = [
    "DATA_TAG_BASE",
    "ACK_TAG_BASE",
    "PeerFailedError",
    "ReliableSendError",
    "payload_checksum",
    "FailureDetector",
    "ReliableComm",
]

#: reliable-layer tag spaces, disjoint from user tags and collectives.
DATA_TAG_BASE = RESERVED_TAG_BASE + (1 << 10)
ACK_TAG_BASE = RESERVED_TAG_BASE + (2 << 10)

_DATA_MARKER = "rmsg"
_ACK_MARKER = "rack"


class PeerFailedError(RCCEError):
    """The addressed rank is dead (confirmed by a liveness probe)."""

    def __init__(self, ue: int, peer: int, sim_time: float) -> None:
        self.ue = ue
        self.peer = peer
        self.sim_time = sim_time
        super().__init__(
            f"UE {ue}: peer UE {peer} is dead (detected at t={sim_time:.9f})"
        )


class ReliableSendError(RCCEError):
    """Retries exhausted against a peer that still probes alive."""

    def __init__(self, ue: int, dest: int, tag: int, attempts: int, sim_time: float) -> None:
        self.ue = ue
        self.dest = dest
        self.tag = tag
        self.attempts = attempts
        self.sim_time = sim_time
        super().__init__(
            f"UE {ue}: send to UE {dest} (tag={tag}) unacked after "
            f"{attempts} attempts at t={sim_time:.9f}"
        )


def _checksum_update(crc: int, obj: Any) -> int:
    if obj is None:
        return zlib.crc32(b"\x00none", crc)
    if isinstance(obj, np.ndarray):
        crc = zlib.crc32(str(obj.dtype).encode(), crc)
        crc = zlib.crc32(str(obj.shape).encode(), crc)
        return zlib.crc32(np.ascontiguousarray(obj).tobytes(), crc)
    if isinstance(obj, (bool, int, float, complex, np.number)):
        return zlib.crc32(repr(obj).encode(), crc)
    if isinstance(obj, str):
        return zlib.crc32(obj.encode("utf-8", "surrogatepass"), crc)
    if isinstance(obj, (bytes, bytearray)):
        return zlib.crc32(bytes(obj), crc)
    if isinstance(obj, (tuple, list)):
        crc = zlib.crc32(f"seq{len(obj)}".encode(), crc)
        for item in obj:
            crc = _checksum_update(crc, item)
        return crc
    if isinstance(obj, dict):
        crc = zlib.crc32(f"map{len(obj)}".encode(), crc)
        for key in sorted(obj, key=repr):
            crc = _checksum_update(crc, key)
            crc = _checksum_update(crc, obj[key])
        return crc
    return zlib.crc32(repr(obj).encode(), crc)


def payload_checksum(source: int, seq: int, data: Any) -> int:
    """CRC32 over the frame identity *and* content.

    Covering (source, seq) as well as the data means a corrupted
    sequence number cannot poison the receiver's dedup window and a
    corrupted source cannot mis-route an ack — any perturbed field
    fails verification and the frame is treated as garbage.
    """
    crc = zlib.crc32(f"{source}:{seq}:".encode())
    return _checksum_update(crc, data)


class FailureDetector:
    """Liveness probes against the SCC system interface's status registers.

    The real chip exposes per-core status through the system FPGA, out of
    band of the mesh; reading it is not free, so a probe costs a fixed
    round-trip of simulated time.  Probes are authoritative: a rank is
    dead iff the runtime killed it (no false positives, matching the
    hardware register semantics rather than gossip heartbeats).
    """

    def __init__(self, runtime: Any, probe_cost: float = 2e-6) -> None:
        if probe_cost < 0:
            raise ValueError(f"probe_cost must be >= 0, got {probe_cost}")
        self._rt = runtime
        self.probe_cost = probe_cost
        self.probes_sent = 0

    def probe(self, peer: int) -> CommGen:
        """Yield-from: True when ``peer`` is alive, False when it crashed."""
        if not 0 <= peer < self._rt.n_ues:
            raise RCCEError(f"probe of nonexistent UE {peer}")
        self.probes_sent += 1
        yield self._rt.sim.timeout(self.probe_cost)
        return peer not in self._rt.failed_ues

    def failure_time(self, peer: int) -> Optional[float]:
        """Simulated death time of ``peer`` (None while alive)."""
        return self._rt.failed_ues.get(peer)


class ReliableComm:
    """Reliable send/recv with bounded retry over one RCCE communicator."""

    def __init__(
        self,
        comm: Any,
        ack_timeout: float = 2e-4,
        max_retries: int = 10,
        backoff: float = 2.0,
        max_timeout: float = 5e-3,
        probe_cost: float = 2e-6,
    ) -> None:
        if ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {ack_timeout}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff}")
        self._comm = comm
        self._rt = comm._rt
        self.ue = comm.ue
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.detector = FailureDetector(self._rt, probe_cost=probe_cost)
        #: next sequence number per (dest, tag).
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: highest delivered sequence per (source, tag) — the dedup window.
        self._delivered: Dict[Tuple[int, int], int] = {}
        self.counters: TCounter[str] = Counter()
        self._install_auto_acker()

    # -- the interrupt-driven ack driver -----------------------------------

    def _install_auto_acker(self) -> None:
        mailbox = self._rt.mailboxes[self.ue]
        previous = mailbox.on_deliver

        def _auto_ack(env: Envelope) -> None:
            if previous is not None:
                previous(env)
            self._maybe_ack(env)

        mailbox.on_deliver = _auto_ack

    def _maybe_ack(self, env: Envelope) -> None:
        """Acknowledge a verified reliable DATA frame on arrival.

        Runs at delivery time, independent of what the UE process is
        doing.  The ack pays mesh time and goes back through the normal
        mailbox path, so it is itself subject to fault injection.
        """
        if not DATA_TAG_BASE <= env.tag < ACK_TAG_BASE:
            return
        frame = env.payload
        if not (isinstance(frame, tuple) and len(frame) == 5 and frame[0] == _DATA_MARKER):
            self.counters["garbage_frames"] += 1
            return
        _marker, src, seq, csum, data = frame
        if (
            not isinstance(src, int)
            or not isinstance(seq, int)
            or payload_checksum(src, seq, data) != csum
        ):
            self.counters["corrupt_detected"] += 1
            return
        if src != env.source or not 0 <= src < self._rt.n_ues or src == self.ue:
            self.counters["garbage_frames"] += 1
            return
        self.counters["acks_sent"] += 1
        utag = env.tag - DATA_TAG_BASE
        ack = (_ACK_MARKER, self.ue, seq, payload_checksum(self.ue, seq, None))
        rt = self._rt
        sim = rt.sim
        delay = chunked_transfer_time(
            rt.mesh, rt.core_map[self.ue], rt.core_map[src], payload_bytes(ack)
        )
        sim.schedule(
            delay,
            lambda: rt.mailboxes[src].deliver(
                Envelope(self.ue, ACK_TAG_BASE + utag, ack, sim.event("rack"))
            ),
        )

    # -- sending ------------------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0) -> CommGen:
        """Reliable send: retransmit until acked, bounded, failure-aware.

        Raises :class:`PeerFailedError` once the destination probes dead
        and :class:`ReliableSendError` when the retry budget runs out
        against a live peer (the congestion-collapse guard).
        """
        if not 0 <= tag < (1 << 10):
            raise ValueError(f"reliable tag must be in [0, 1024), got {tag}")
        key = (dest, tag)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        frame = (_DATA_MARKER, self.ue, seq, payload_checksum(self.ue, seq, data), data)
        timeout = self.ack_timeout
        for attempt in range(self.max_retries):
            if attempt:
                self.counters["retries"] += 1
            yield from self._comm.send_async(frame, dest, DATA_TAG_BASE + tag)
            deadline = self._rt.sim.now + timeout
            while True:
                remaining = deadline - self._rt.sim.now
                if remaining <= 0:
                    break
                try:
                    ack = yield from self._comm.recv(
                        dest, ACK_TAG_BASE + tag, timeout=remaining
                    )
                except RCCETimeoutError:
                    break
                if self._valid_ack(ack, dest) and ack[2] == seq:
                    return None
                # stale / corrupted / duplicate ack: keep waiting
                self.counters["stale_acks"] += 1
            alive = yield from self.detector.probe(dest)
            if not alive:
                raise PeerFailedError(self.ue, dest, self._rt.sim.now)
            timeout = min(timeout * self.backoff, self.max_timeout)
        raise ReliableSendError(
            self.ue, dest, tag, self.max_retries, self._rt.sim.now
        )

    @staticmethod
    def _valid_ack(ack: Any, dest: int) -> bool:
        if not (isinstance(ack, tuple) and len(ack) == 4 and ack[0] == _ACK_MARKER):
            return False
        _marker, src, seq, csum = ack
        if not isinstance(src, int) or not isinstance(seq, int) or src != dest:
            return False
        return payload_checksum(src, seq, None) == csum

    # -- receiving -----------------------------------------------------------

    def recv(
        self,
        source: Optional[int] = None,
        tag: int = 0,
        timeout: Optional[float] = None,
    ) -> CommGen:
        """Reliable receive: verified, deduplicated; returns (source, data).

        Raises :class:`~repro.rcce.errors.RCCETimeoutError` when no fresh
        verified frame arrives within ``timeout`` simulated seconds.
        Corrupted and duplicate frames are consumed silently (counted)
        without resetting the deadline.
        """
        deadline = None if timeout is None else self._rt.sim.now + timeout
        while True:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - self._rt.sim.now
                if remaining <= 0:
                    raise RCCETimeoutError(
                        self.ue, source, tag, timeout or 0.0, self._rt.sim.now
                    )
            frame = yield from self._comm.recv(
                source, DATA_TAG_BASE + tag, timeout=remaining
            )
            if not (
                isinstance(frame, tuple) and len(frame) == 5 and frame[0] == _DATA_MARKER
            ):
                self.counters["garbage_frames"] += 1
                continue
            _marker, src, seq, csum, data = frame
            if (
                not isinstance(src, int)
                or not isinstance(seq, int)
                or payload_checksum(src, seq, data) != csum
            ):
                self.counters["corrupt_detected"] += 1
                continue
            key = (src, tag)
            last = self._delivered.get(key, -1)
            if seq <= last:
                self.counters["duplicates_discarded"] += 1
                continue
            self._delivered[key] = seq
            return src, data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReliableComm ue={self.ue} counters={dict(self.counters)}>"
