"""Deterministic fault injection and fault-tolerant execution.

Three layers:

- :mod:`repro.faults.plan` — :class:`FaultPlan`, the declarative seeded
  failure model (message loss/duplication/corruption, core stalls and
  failures, MC stall bursts, degraded mesh links), serializable as JSON;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which binds a
  plan to one simulated run through hooks in the mailbox/runtime/mesh/
  mcqueue layers and logs a bit-replayable fault schedule;
- :mod:`repro.faults.reliable` — :class:`ReliableComm` and
  :class:`FailureDetector`, the recovery substrate (checksummed frames,
  acks, bounded retry with backoff, dedup, liveness probes) that the
  fault-tolerant SpMV driver in :mod:`repro.core.experiment` runs on.

A fourth layer attacks the *pipeline* rather than the simulated chip:
:mod:`repro.faults.chaos` (``repro chaos``) SIGKILLs/SIGSTOPs live
campaign workers and corrupts content-store entries under the
self-healing supervisor of :mod:`repro.core.supervise`, asserting that
surviving records stay bitwise identical to a clean run and that
exactly the injected poison points are quarantined.

See ``docs/FAULTS.md`` for the taxonomy and recovery semantics.
"""

from .injector import FaultEvent, FaultInjector, derive_seed
from .plan import (
    EXAMPLE_PLANS,
    CoreFailure,
    CoreStall,
    FaultPlan,
    LinkDegradation,
    McStallBurst,
    get_plan,
    load_plan,
)
from .reliable import (
    ACK_TAG_BASE,
    DATA_TAG_BASE,
    FailureDetector,
    PeerFailedError,
    ReliableComm,
    ReliableSendError,
    payload_checksum,
)

__all__ = [
    "CoreFailure",
    "CoreStall",
    "McStallBurst",
    "LinkDegradation",
    "FaultPlan",
    "EXAMPLE_PLANS",
    "get_plan",
    "load_plan",
    "FaultEvent",
    "FaultInjector",
    "derive_seed",
    "DATA_TAG_BASE",
    "ACK_TAG_BASE",
    "PeerFailedError",
    "ReliableSendError",
    "payload_checksum",
    "FailureDetector",
    "ReliableComm",
]
