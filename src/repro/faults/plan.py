"""Fault plans: the declarative, seeded failure model of a run.

A :class:`FaultPlan` describes *what can go wrong* in one simulated run
of an RCCE job — message loss/duplication/corruption on the mesh,
transient core stalls, permanent core failures, memory-controller stall
bursts and degraded mesh links.  Plans are plain data: they can be
written as JSON files, shipped with a campaign, and replayed bit-exactly
because every random choice is drawn from ``random.Random`` streams
derived from the plan's seed (see :mod:`repro.faults.injector`).

The taxonomy (documented in ``docs/FAULTS.md``):

==================  ====================================================
fault               where it is injected
==================  ====================================================
message drop        :meth:`repro.rcce.mpb.Mailbox.deliver`
message duplicate   same (second copy with its own ack)
message corrupt     same (payload perturbed; checksums catch it)
core stall          :meth:`repro.rcce.api.RCCEComm.compute` windows
core failure        the UE's :class:`repro.sim.Process` is killed
MC stall burst      :func:`repro.scc.mcqueue.simulate_controller`
link degradation    :meth:`repro.scc.mesh.MeshNetwork.message_time`
==================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Dict, Tuple, Union

__all__ = [
    "CoreFailure",
    "CoreStall",
    "McStallBurst",
    "LinkDegradation",
    "FaultPlan",
    "EXAMPLE_PLANS",
    "get_plan",
    "load_plan",
]


@dataclass(frozen=True)
class CoreFailure:
    """Permanent failure: UE ``ue`` dies at simulated time ``time``."""

    ue: int
    time: float

    def __post_init__(self) -> None:
        if self.ue < 0:
            raise ValueError(f"ue must be >= 0, got {self.ue}")
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class CoreStall:
    """Transient stall: UE ``ue`` loses ``duration`` seconds near ``time``."""

    ue: int
    time: float
    duration: float

    def __post_init__(self) -> None:
        if self.ue < 0:
            raise ValueError(f"ue must be >= 0, got {self.ue}")
        if self.time < 0 or self.duration <= 0:
            raise ValueError(
                f"stall needs time >= 0 and duration > 0, got "
                f"time={self.time}, duration={self.duration}"
            )


@dataclass(frozen=True)
class McStallBurst:
    """Memory-controller stall window: service slows by ``factor``."""

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"burst window [{self.start}, {self.end}) is invalid")
        if self.factor < 1.0:
            raise ValueError(f"burst factor must be >= 1.0, got {self.factor}")


@dataclass(frozen=True)
class LinkDegradation:
    """Mesh link (src tile -> dst tile) serializes ``factor``x slower."""

    src_tile: Tuple[int, int]
    dst_tile: Tuple[int, int]
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {self.factor}")


def _rate(name: str, value: float) -> float:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {value}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """One run's complete failure model (seeded and serializable).

    Message faults are rate-based: every mailbox delivery draws from the
    plan's message stream and is dropped / duplicated / corrupted with
    the configured probabilities.  Core failures and stalls are either
    explicit schedules or drawn at injector-construction time from the
    seed (``n_random_failures`` ranks, excluding ``protected_ues``, with
    failure times uniform in ``failure_window``).  Everything downstream
    of the seed is deterministic: the same plan on the same program
    yields the identical fault schedule, which is what makes faulty runs
    replayable and debuggable.
    """

    name: str = "custom"
    seed: int = 0
    # -- message faults (rates per delivery) --
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    # -- core failures --
    core_failures: Tuple[CoreFailure, ...] = ()
    n_random_failures: int = 0
    failure_window: Tuple[float, float] = (0.0, 1e-3)
    #: ranks that are never chosen for random failure (rank 0 is the
    #: fault-tolerant driver's coordinator and must survive).
    protected_ues: Tuple[int, ...] = (0,)
    # -- transient core stalls --
    core_stalls: Tuple[CoreStall, ...] = ()
    n_random_stalls: int = 0
    stall_window: Tuple[float, float] = (0.0, 1e-3)
    stall_duration: float = 1e-4
    # -- memory-controller / mesh degradation --
    mc_stall_bursts: Tuple[McStallBurst, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()

    def __post_init__(self) -> None:
        _rate("drop_rate", self.drop_rate)
        _rate("duplicate_rate", self.duplicate_rate)
        _rate("corrupt_rate", self.corrupt_rate)
        total = self.drop_rate + self.duplicate_rate + self.corrupt_rate
        if total >= 1.0:
            raise ValueError(
                f"drop+duplicate+corrupt rates must sum below 1.0, got {total}"
            )
        if self.n_random_failures < 0 or self.n_random_stalls < 0:
            raise ValueError("random fault counts must be >= 0")
        for window, label in (
            (self.failure_window, "failure_window"),
            (self.stall_window, "stall_window"),
        ):
            if len(window) != 2 or window[0] < 0 or window[1] < window[0]:
                raise ValueError(f"{label} must be (t0, t1) with 0 <= t0 <= t1")
        if self.stall_duration <= 0:
            raise ValueError(f"stall_duration must be > 0, got {self.stall_duration}")
        for cf in self.core_failures:
            if cf.ue in self.protected_ues:
                raise ValueError(
                    f"core_failures names protected UE {cf.ue} "
                    f"(protected: {sorted(self.protected_ues)})"
                )

    # -- introspection ------------------------------------------------------

    @property
    def is_faultless(self) -> bool:
        """True when the plan injects nothing (the perfect machine)."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.core_failures
            and self.n_random_failures == 0
            and not self.core_stalls
            and self.n_random_stalls == 0
            and not self.mc_stall_bursts
            and not self.link_degradations
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Same plan, different seed (new draw of the random schedule)."""
        return replace(self, seed=seed)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready dict (the plan file format)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "corrupt_rate": self.corrupt_rate,
            "core_failures": [[cf.ue, cf.time] for cf in self.core_failures],
            "n_random_failures": self.n_random_failures,
            "failure_window": list(self.failure_window),
            "protected_ues": list(self.protected_ues),
            "core_stalls": [[s.ue, s.time, s.duration] for s in self.core_stalls],
            "n_random_stalls": self.n_random_stalls,
            "stall_window": list(self.stall_window),
            "stall_duration": self.stall_duration,
            "mc_stall_bursts": [[b.start, b.end, b.factor] for b in self.mc_stall_bursts],
            "link_degradations": [
                [list(d.src_tile), list(d.dst_tile), d.factor]
                for d in self.link_degradations
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "core_failures" in kwargs:
            kwargs["core_failures"] = tuple(
                CoreFailure(int(ue), float(t)) for ue, t in kwargs["core_failures"]
            )
        if "core_stalls" in kwargs:
            kwargs["core_stalls"] = tuple(
                CoreStall(int(ue), float(t), float(d))
                for ue, t, d in kwargs["core_stalls"]
            )
        if "mc_stall_bursts" in kwargs:
            kwargs["mc_stall_bursts"] = tuple(
                McStallBurst(float(a), float(b), float(f))
                for a, b, f in kwargs["mc_stall_bursts"]
            )
        if "link_degradations" in kwargs:
            kwargs["link_degradations"] = tuple(
                LinkDegradation((int(s[0]), int(s[1])), (int(d[0]), int(d[1])), float(f))
                for s, d, f in kwargs["link_degradations"]
            )
        for key in ("failure_window", "stall_window", "protected_ues"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the plan as a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file written by :meth:`to_file`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan {path}: invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"fault plan {path}: top level must be an object")
        return cls.from_dict(data)


#: Named example plans: ``repro faults --plan <name>`` and the CI smoke
#: matrix use these.  Times are sized for the small CLI/CI workloads
#: (sub-millisecond makespans at --scale 0.1).
EXAMPLE_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "lossy": FaultPlan(
        name="lossy",
        seed=2012,
        drop_rate=0.05,
        duplicate_rate=0.02,
        corrupt_rate=0.02,
    ),
    "crash": FaultPlan(
        name="crash",
        seed=2012,
        drop_rate=0.02,
        n_random_failures=1,
        failure_window=(1e-5, 5e-4),
    ),
    "degraded": FaultPlan(
        name="degraded",
        seed=2012,
        n_random_stalls=4,
        stall_window=(0.0, 5e-4),
        stall_duration=5e-5,
        mc_stall_bursts=(McStallBurst(1e-4, 3e-4, 4.0),),
        link_degradations=(LinkDegradation((0, 0), (1, 0), 8.0),),
    ),
    "chaos": FaultPlan(
        name="chaos",
        seed=2012,
        drop_rate=0.08,
        duplicate_rate=0.04,
        corrupt_rate=0.04,
        n_random_failures=1,
        failure_window=(1e-5, 5e-4),
        n_random_stalls=2,
        stall_window=(0.0, 5e-4),
        stall_duration=5e-5,
        link_degradations=(LinkDegradation((0, 0), (1, 0), 4.0),),
    ),
}


def get_plan(name: str) -> FaultPlan:
    """Look up a named example plan (KeyError names the unknown plan)."""
    if name not in EXAMPLE_PLANS:
        raise KeyError(
            f"unknown fault plan {name!r}; known: {sorted(EXAMPLE_PLANS)}"
        )
    return EXAMPLE_PLANS[name]


def load_plan(spec: str) -> FaultPlan:
    """Resolve a plan spec: a named example plan or a JSON file path."""
    if spec in EXAMPLE_PLANS:
        return EXAMPLE_PLANS[spec]
    path = Path(spec)
    if path.exists():
        return FaultPlan.from_file(path)
    raise ValueError(
        f"fault plan {spec!r} is neither a named plan "
        f"({sorted(EXAMPLE_PLANS)}) nor an existing file"
    )
