"""Shared plumbing of the ``repro`` CLI subcommands.

Every subcommand takes the same two output knobs: ``--output FILE``
(write the rendering to a file instead of stdout) and, where the
subcommand has a structured rendering, ``--json`` (shorthand for
``--format json``).  The helpers here keep those flags and their
resolution identical across :mod:`repro.cli`, :mod:`repro.analysis.cli`,
:mod:`repro.faults.cli` and :mod:`repro.obs.cli`.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

__all__ = ["add_output_flag", "add_json_flag", "resolve_format", "open_output"]


def add_output_flag(p: argparse.ArgumentParser) -> None:
    """The uniform ``--output FILE`` flag."""
    p.add_argument(
        "--output",
        type=str,
        default="",
        metavar="FILE",
        help="write the output to this file instead of stdout",
    )


def add_json_flag(p: argparse.ArgumentParser) -> None:
    """The uniform ``--json`` flag (shorthand for ``--format json``)."""
    p.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (shorthand for --format json)",
    )


def resolve_format(args: argparse.Namespace) -> str:
    """Effective output format: ``--json`` wins over ``--format``."""
    if getattr(args, "json", False):
        return "json"
    return getattr(args, "format", "text")


@contextmanager
def open_output(args: argparse.Namespace, out: Optional[TextIO]) -> Iterator[TextIO]:
    """Yield the stream to print to.

    An explicit ``out`` (tests pass a StringIO) always wins; otherwise
    ``--output`` opens a file for the duration, else stdout.
    """
    if out is not None:
        yield out
    elif getattr(args, "output", ""):
        fh = open(args.output, "w", encoding="utf-8")
        try:
            yield fh
        finally:
            fh.close()
    else:
        yield sys.stdout
