"""Shared plumbing of the ``repro`` CLI subcommands.

Every subcommand takes the same two output knobs: ``--output FILE``
(write the rendering to a file instead of stdout) and, where the
subcommand has a structured rendering, ``--json`` (shorthand for
``--format json``).  The helpers here keep those flags and their
resolution identical across :mod:`repro.cli`, :mod:`repro.analysis.cli`,
:mod:`repro.faults.cli` and :mod:`repro.obs.cli`.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

__all__ = [
    "add_output_flag",
    "add_json_flag",
    "add_supervise_flags",
    "policy_from_args",
    "resolve_format",
    "open_output",
]


def add_output_flag(p: argparse.ArgumentParser) -> None:
    """The uniform ``--output FILE`` flag."""
    p.add_argument(
        "--output",
        type=str,
        default="",
        metavar="FILE",
        help="write the output to this file instead of stdout",
    )


def add_json_flag(p: argparse.ArgumentParser) -> None:
    """The uniform ``--json`` flag (shorthand for ``--format json``)."""
    p.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (shorthand for --format json)",
    )


def add_supervise_flags(p: argparse.ArgumentParser) -> None:
    """The uniform supervised-execution flags (``docs/FAULTS.md``).

    Giving any of them turns the self-healing supervisor on
    (:func:`policy_from_args`); leaving all unset keeps the bare pool.
    """
    from .core.supervise import ON_FAILURE_LADDER

    g = p.add_argument_group("supervised execution")
    g.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per task attempt; a hung worker is "
        "SIGKILLed at the deadline and the task retried with backoff "
        "(default: no timeout)",
    )
    g.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="in-pool retries per task before the degradation ladder / "
        "quarantine (default 2 when supervision is enabled)",
    )
    g.add_argument(
        "--on-failure",
        choices=ON_FAILURE_LADDER,
        default=None,
        help="after the last retry: 'quarantine' records the poison point "
        "and continues, 'serial' reruns it in the parent process first, "
        "'model' additionally reruns on the analytic model, 'raise' "
        "aborts the sweep (default quarantine)",
    )


def policy_from_args(args: argparse.Namespace):
    """A ``SupervisePolicy`` when any supervise flag was given, else None."""
    from .core.supervise import SupervisePolicy

    kwargs = {}
    if getattr(args, "task_timeout", None) is not None:
        kwargs["task_timeout"] = args.task_timeout
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    if getattr(args, "on_failure", None) is not None:
        kwargs["on_failure"] = args.on_failure
    if not kwargs:
        return None
    return SupervisePolicy(**kwargs)


def resolve_format(args: argparse.Namespace) -> str:
    """Effective output format: ``--json`` wins over ``--format``."""
    if getattr(args, "json", False):
        return "json"
    return getattr(args, "format", "text")


@contextmanager
def open_output(args: argparse.Namespace, out: Optional[TextIO]) -> Iterator[TextIO]:
    """Yield the stream to print to.

    An explicit ``out`` (tests pass a StringIO) always wins; otherwise
    ``--output`` opens a file for the duration, else stdout.
    """
    if out is not None:
        yield out
    elif getattr(args, "output", ""):
        fh = open(args.output, "w", encoding="utf-8")
        try:
            yield fh
        finally:
            fh.close()
    else:
        yield sys.stdout
