"""Contention primitives: FIFO resources and stores.

``Resource`` models a server with finite capacity (the SCC memory
controllers are ``Resource(capacity=1)`` with a deterministic service
time per cache line).  ``Store`` is an unbounded FIFO mailbox used for
message queues between units of execution.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple

from .engine import SimEvent, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO server pool with integer capacity.

    ``request()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once.  Waiters are served
    strictly in request order (deterministic).
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Tuple[SimEvent, float]] = deque()
        # Diagnostics for utilization studies.
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of slots-in-use over time (server-seconds)."""
        self._account()
        return self._busy_time

    def request(self) -> SimEvent:
        """Event that triggers when a slot is granted (FIFO)."""
        self.total_requests += 1
        ev = self.sim.event(f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.succeed(self.sim.now)
        else:
            self._waiters.append((ev, self.sim.now))
        return ev

    def release(self) -> None:
        """Return a slot; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        self._account()
        if self._waiters:
            ev, requested_at = self._waiters.popleft()
            self.total_wait_time += self.sim.now - requested_at
            # Slot transfers directly to the next waiter.
            ev.succeed(self.sim.now)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that triggers with
    the oldest item as soon as one is available.  Pending gets are
    served in arrival order.
    """

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Event that triggers with the oldest item once available."""
        ev = self.sim.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> Tuple[Any, ...]:
        """Snapshot of queued items (testing/diagnostics)."""
        return tuple(self._items)
