"""Coroutine processes on top of the event engine.

A *process* is a Python generator that yields :class:`SimEvent` objects
(typically ``sim.timeout(dt)`` or events produced by resources).  The
process resumes when the yielded event triggers, receiving the event's
value via ``send``.  This is the execution model used for RCCE units of
execution: each UE is one process; communication primitives yield
events owned by the MPB / memory-controller models.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..obs.tracer import TID_SCHED
from .engine import SimEvent, SimulationError, Simulator

__all__ = ["Process", "ProcessFailure"]

ProcessGen = Generator[SimEvent, Any, Any]


class ProcessFailure(RuntimeError):
    """Wraps an exception raised inside a process generator."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Process:
    """Drive a generator as a simulated process.

    The process itself is awaitable: it exposes a ``done`` event that
    triggers with the generator's return value, so processes can wait
    for each other (``yield other.done``).
    """

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "process") -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self.done: SimEvent = sim.event(f"{name}.done")
        self.error: Optional[BaseException] = None
        self.killed = False
        # Kick off on the next dispatch at the current time so that
        # process creation order, not generator body order, decides ties.
        sim.schedule(0.0, lambda: self._resume(None))

    @property
    def finished(self) -> bool:
        """True once the generator returned (or the process was killed)."""
        return self.done.triggered

    def kill(self, value: Any = None) -> bool:
        """Terminate the process now (models a hard core failure).

        The generator is closed, ``done`` triggers with ``value`` so
        waiters are released, and any event the process was blocked on
        becomes a no-op when it later fires.  Returns False if the
        process had already finished.
        """
        if self.done.triggered:
            return False
        self.killed = True
        self._gen.close()
        tr = self.sim.tracer
        if tr is not None and tr.enabled:
            tr.instant("proc.kill", tid=TID_SCHED, cat="sched", process=self.name)
        self.done.succeed(value)
        return True

    def _resume(self, value: Any) -> None:
        if self.killed:
            return  # a pending event fired after the core died
        if self.done.triggered:
            raise SimulationError(f"process {self.name!r} resumed after completion")
        tr = self.sim.tracer
        if tr is not None and tr.enabled:
            # Context switch: the scheduler hands the (single) simulated
            # CPU to this process for one step.
            tr.instant("proc.resume", tid=TID_SCHED, cat="sched", process=self.name)
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            if tr is not None and tr.enabled:
                tr.instant("proc.exit", tid=TID_SCHED, cat="sched", process=self.name)
            self.done.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced as ProcessFailure
            self.error = exc
            raise ProcessFailure(self, exc) from exc
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield SimEvent"
            )
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"
