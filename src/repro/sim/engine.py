"""Deterministic discrete-event simulation engine.

This is the substrate every timed component of the SCC model runs on:
the RCCE unit-of-execution scheduler, the memory-controller queues and
the mesh-message timing all advance a single simulated clock owned by a
:class:`Simulator`.

The engine is intentionally small and fully deterministic: events fire
in (time, sequence-number) order, so two runs with the same inputs
produce bit-identical schedules.  No wall-clock time is ever consulted.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..obs.tracer import TID_SIM

__all__ = ["SimEvent", "Simulator", "SimulationError", "any_of"]


class SimulationError(RuntimeError):
    """Raised for illegal scheduler operations (negative delays, etc.)."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.  Ordering is (time, seq) so ties resolve in
    scheduling order, which keeps the simulation deterministic."""

    time: float
    seq: int
    event: "SimEvent" = field(compare=False)


class SimEvent:
    """A one-shot event that callbacks can be attached to.

    An event is *triggered* at most once, carrying an arbitrary value.
    Callbacks attached after triggering fire immediately (at the current
    simulated time) — this mirrors SimPy semantics and avoids races
    between processes that wait on an event that already happened.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "name", "_pending_value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None
        self._pending_value: Any = None  # value a scheduled timeout will deliver

    @property
    def triggered(self) -> bool:
        """True once the event has fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The delivered value (raises before triggering)."""
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not triggered yet")
        return self._value

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Attach a callback; fires now (via the queue) if already triggered."""
        if self._triggered:
            # Fire at the current time rather than silently dropping.
            self.sim.schedule(0.0, lambda: fn(self._value))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event now, delivering ``value`` to all waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Simulator:
    """Event-queue owner.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self, record_trace: bool = False, tracer: Optional[Any] = None) -> None:
        self._now = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._handled = 0
        self._record_trace = record_trace
        #: (time, seq, event-name) of every dispatched event when
        #: ``record_trace`` is on — the determinism verifier replays a
        #: run and diffs two of these schedules.
        self.trace: list[tuple[float, int, str]] = []
        #: optional :class:`repro.obs.Tracer`; when attached (and
        #: enabled) every dispatched event is recorded as an instant on
        #: the simulator lane.  ``None`` costs one branch per step.
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def events_handled(self) -> int:
        """Number of callbacks dispatched so far (diagnostic)."""
        return self._handled

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered event owned by this simulator."""
        return SimEvent(self, name)

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        ev = SimEvent(self, "scheduled")
        ev.add_callback(lambda _value: fn())
        heapq.heappush(self._queue, _QueueEntry(self._now + delay, next(self._seq), ev))

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """Return an event that triggers ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        ev = SimEvent(self, "timeout")
        ev._pending_value = value
        heapq.heappush(self._queue, _QueueEntry(self._now + delay, next(self._seq), ev))
        return ev

    def _step(self) -> None:
        entry = heapq.heappop(self._queue)
        if entry.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = entry.time
        self._handled += 1
        ev = entry.event
        if self._record_trace:
            self.trace.append((entry.time, entry.seq, ev.name))
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant(ev.name or "event", tid=TID_SIM, cat="sim", seq=entry.seq)
        if not ev.triggered:
            ev.succeed(ev._pending_value)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  ``max_events`` is a runaway
        guard; hitting it raises :class:`SimulationError`.
        """
        dispatched = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            self._step()
            dispatched += 1
            if dispatched > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        return self._now

    def peek(self) -> float:
        """Time of the next pending event, or +inf if none."""
        return self._queue[0].time if self._queue else float("inf")

    def empty(self) -> bool:
        """True when no events are pending."""
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now:.9f} pending={len(self._queue)}>"


def any_of(sim: Simulator, events: "list[SimEvent]", name: str = "any_of") -> SimEvent:
    """Event that triggers when the *first* of ``events`` triggers.

    The combined event's value is ``(winner, value)`` — the source event
    that fired first and the value it carried.  Later events still fire
    normally but are ignored here, so losers of the race (e.g. a recv
    timeout that was beaten by the message) are harmless no-ops.
    """
    if not events:
        raise SimulationError("any_of needs at least one event")
    combined = sim.event(name)

    def _make(ev: SimEvent) -> Callable[[Any], None]:
        def _cb(value: Any) -> None:
            if not combined.triggered:
                combined.succeed((ev, value))

        return _cb

    for ev in events:
        ev.add_callback(_make(ev))
    return combined

