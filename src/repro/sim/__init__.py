"""Deterministic discrete-event simulation substrate.

Public surface:

- :class:`~repro.sim.engine.Simulator` — the clock and event queue.
- :class:`~repro.sim.engine.SimEvent` — one-shot triggerable events.
- :class:`~repro.sim.process.Process` — generator-based processes.
- :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  — FIFO contention primitives.
"""

from .engine import SimEvent, SimulationError, Simulator, any_of
from .process import Process, ProcessFailure
from .resources import Resource, Store

__all__ = [
    "SimEvent",
    "SimulationError",
    "Simulator",
    "any_of",
    "Process",
    "ProcessFailure",
    "Resource",
    "Store",
]
