"""Off-chip memory model: read latency (paper Eq. 1) and MC bandwidth.

Two effects dominate the paper's results and both live here:

* **Distance-dependent latency** — Eq. 1 of the paper: a core's memory
  request costs ``40`` core cycles + ``4*2n`` mesh cycles (n = hops to
  its controller) + ``46`` memory cycles.  The P54C stalls for the whole
  round trip (in-order, blocking caches).
* **Controller sharing** — six tiles (12 cores) share one DDR3
  controller.  When aggregate demand exceeds a controller's sustained
  bandwidth, each core's effective per-line service time degrades to
  its fair share.  We model this with the deterministic closed form
  ``t_line_effective = max(latency, demand_lines/sec / (BW/line_bytes))``
  evaluated per controller (see :class:`MemorySystem.effective_line_time`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .params import (
    CACHE_LINE_BYTES,
    LAT_CORE_CYCLES,
    LAT_MEM_CYCLES,
    LAT_MESH_CYCLES_PER_HOP,
    MC_BANDWIDTH_BYTES_PER_SEC_AT_800,
)
from .topology import SCCTopology

__all__ = ["memory_read_latency", "MemoryController", "MemorySystem"]


def memory_read_latency(
    hops: int,
    core_mhz: float,
    mesh_mhz: float,
    mem_mhz: float,
) -> float:
    """Round-trip read latency in seconds (paper Eq. 1).

    ``40*C_core + 4*(2*hops)*C_mesh + 46*C_mem`` with ``C_x`` the cycle
    times of the three clock domains.
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    for name, f in (("core_mhz", core_mhz), ("mesh_mhz", mesh_mhz), ("mem_mhz", mem_mhz)):
        if f <= 0:
            raise ValueError(f"{name} must be positive, got {f}")
    t_core = LAT_CORE_CYCLES / (core_mhz * 1e6)
    t_mesh = LAT_MESH_CYCLES_PER_HOP * hops / (mesh_mhz * 1e6)
    t_mem = LAT_MEM_CYCLES / (mem_mhz * 1e6)
    return t_core + t_mesh + t_mem


@dataclass(frozen=True)
class MemoryController:
    """One of the four DDR3 controllers."""

    index: int
    coord: Tuple[int, int]
    mem_mhz: float

    @property
    def bandwidth(self) -> float:
        """Sustained bytes/second, scaling linearly with the DDR clock."""
        return MC_BANDWIDTH_BYTES_PER_SEC_AT_800 * (self.mem_mhz / 800.0)

    def line_service_time(self, line_bytes: int = CACHE_LINE_BYTES) -> float:
        """Seconds the controller needs per cache line at full tilt."""
        return line_bytes / self.bandwidth


class MemorySystem:
    """The four controllers plus the private-memory quadrant map."""

    #: machine this memory system belongs to (cache-key discriminator
    #: for the machine-generic solvers in :mod:`repro.core.timing`).
    machine_id = "scc-48"
    #: paper Eq. 1 coefficients, exposed in the machine-generic form
    #: every :class:`repro.machine.base.MemorySystemModel` carries.
    lat_core_cycles = float(LAT_CORE_CYCLES)
    lat_mesh_cycles_per_hop = float(LAT_MESH_CYCLES_PER_HOP)
    lat_mem_cycles = float(LAT_MEM_CYCLES)

    def __init__(
        self,
        topology: SCCTopology | None = None,
        mem_mhz: float = 800.0,
        line_bytes: int = CACHE_LINE_BYTES,
        tracer: Optional[Any] = None,
    ) -> None:
        if mem_mhz <= 0:
            raise ValueError(f"mem_mhz must be positive, got {mem_mhz}")
        self.topology = topology or SCCTopology()
        self.mem_mhz = mem_mhz
        self.line_bytes = line_bytes
        #: optional :class:`repro.obs.Tracer`: effective line-time
        #: solutions are recorded as per-controller histograms.
        self.tracer = tracer
        self.controllers = tuple(
            MemoryController(index=i, coord=coord, mem_mhz=mem_mhz)
            for i, coord in enumerate(self.topology.mc_coords)
        )

    def controller_of_core(self, core: int) -> MemoryController:
        """The MC serving this core's private memory."""
        return self.controllers[self.topology.mc_index_of_core(core)]

    def latency_for_core(self, core: int, core_mhz: float, mesh_mhz: float) -> float:
        """Eq. 1 round-trip latency for this core's hop count."""
        hops = self.topology.hops_to_mc(core)
        return memory_read_latency(hops, core_mhz, mesh_mhz, self.mem_mhz)

    def group_cores_by_controller(self, cores: Iterable[int]) -> Dict[int, list]:
        """Map MC index -> the given cores it serves."""
        groups: Dict[int, list] = {mc.index: [] for mc in self.controllers}
        for c in cores:
            groups[self.topology.mc_index_of_core(c)].append(c)
        return groups

    def effective_line_time(
        self,
        core: int,
        core_mhz: float,
        mesh_mhz: float,
        demand_lines_per_sec: Mapping[int, float],
    ) -> float:
        """Effective seconds per missed cache line seen by ``core``.

        ``demand_lines_per_sec`` maps every *active* core to the line
        rate it would sustain if unconstrained.  If the total demand on
        this core's controller exceeds its bandwidth, the core's service
        time inflates by the over-subscription factor — i.e. the
        controller hands each requester its proportional share.  The
        uncontended floor is the Eq. 1 round-trip latency.
        """
        latency = self.latency_for_core(core, core_mhz, mesh_mhz)
        mc = self.controller_of_core(core)
        mc_line_rate = mc.bandwidth / self.line_bytes  # lines/sec capacity
        total_demand = sum(
            rate
            for other, rate in demand_lines_per_sec.items()
            if self.topology.mc_index_of_core(other) == mc.index
        )
        result = latency
        my_rate = demand_lines_per_sec.get(core, 0.0)
        if total_demand > 0 and total_demand > mc_line_rate and my_rate > 0:
            # Saturated: each line effectively takes its fair-share
            # service time; latency still bounds from below.
            share = mc_line_rate * (my_rate / total_demand)
            result = max(latency, 1.0 / share)
        tr = self.tracer
        if tr:
            tr.metrics.histogram("mem.effective_line_time_s", mc=mc.index).observe(result)
            tr.metrics.gauge("mem.mc_oversubscription", mc=mc.index).set(
                total_demand / mc_line_rate
            )
        return result
