"""Vectorized locality analysis: reuse times, footprint, miss ratios.

The irregular ``x[index[j]]`` gather of the CSR SpMV kernel is the one
access stream whose cache behaviour cannot be written down in closed
form (paper Sec. III / IV-C).  Simulating it address-by-address is
O(N) *Python* work per access — infeasible for the multi-million-nonzero
matrices of Table I.  Instead we use the higher-order theory of
locality (Xiang et al., "HOTL", ASPLOS'13):

1. compute the **reuse time** of every access (distance in accesses
   since the previous touch of the same cache line) — vectorized with
   one ``argsort``;
2. convert the reuse-time histogram into the **average footprint**
   ``fp(w)`` — the mean number of distinct lines touched in any window
   of ``w`` consecutive accesses — via Xiang's O(N) formula;
3. predict a capacity-``C`` LRU cache miss for every access whose reuse
   window has footprint larger than ``C`` lines.

Step 3 is exact for fully-associative LRU under the average-footprint
approximation and is a tight model for the SCC's 4-way pseudo-LRU L2;
``tests/test_scc_locality.py`` cross-validates it against the exact
simulator of :mod:`repro.scc.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .params import CACHE_LINE_BYTES

__all__ = [
    "lines_of_addresses",
    "reuse_times",
    "ReuseProfile",
    "reuse_profile",
    "FootprintCurve",
    "footprint_curve",
    "MissRatioCurve",
    "miss_ratio_curve",
]


def lines_of_addresses(addrs: np.ndarray, line_bytes: int = CACHE_LINE_BYTES) -> np.ndarray:
    """Map byte addresses to cache-line ids."""
    if line_bytes <= 0:
        raise ValueError(f"line_bytes must be positive, got {line_bytes}")
    return np.asarray(addrs, dtype=np.int64) // line_bytes


def reuse_times(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-access reuse times of a line-id stream.

    Returns ``(rt, first_mask)`` where ``rt[i]`` is the number of
    accesses between access ``i`` and the previous access to the same
    line *inclusive of i* (so an immediate re-access has ``rt == 1``),
    and ``first_mask[i]`` marks cold (first-ever) accesses, whose ``rt``
    is 0 and meaningless.
    """
    lines = np.asarray(lines, dtype=np.int64).ravel()
    n = lines.size
    rt = np.zeros(n, dtype=np.int64)
    first = np.zeros(n, dtype=bool)
    if n == 0:
        return rt, first
    # Group accesses by line id, stable in time order.
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_lines[1:] != sorted_lines[:-1]
    first[order] = boundary
    # Within each group, consecutive entries are consecutive touches.
    same = ~boundary[1:]
    cur = order[1:][same]
    prev = order[:-1][same]
    rt[cur] = cur - prev
    return rt, first


@dataclass(frozen=True)
class ReuseProfile:
    """Summary of one access stream at line granularity."""

    n_accesses: int
    n_lines: int                     # distinct lines (== cold misses)
    reuse_hist: np.ndarray           # reuse_hist[t] = #accesses with rt == t
    first_times: np.ndarray          # 1-based time of first access per line
    last_times: np.ndarray           # 1-based time of last access per line

    @property
    def cold_misses(self) -> int:
        """First-touch misses (== distinct lines)."""
        return self.n_lines


def reuse_profile(lines: np.ndarray) -> ReuseProfile:
    """Compute the full reuse profile of a line-id stream."""
    lines = np.asarray(lines, dtype=np.int64).ravel()
    n = lines.size
    if n == 0:
        return ReuseProfile(0, 0, np.zeros(1, dtype=np.int64), np.empty(0, np.int64), np.empty(0, np.int64))
    rt, first = reuse_times(lines)
    hist = np.bincount(rt[~first], minlength=n + 1).astype(np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_lines[1:] != sorted_lines[:-1]
    firsts = order[boundary] + 1                      # 1-based
    last_boundary = np.empty(n, dtype=bool)
    last_boundary[-1] = True
    last_boundary[:-1] = sorted_lines[1:] != sorted_lines[:-1]
    lasts = order[last_boundary] + 1                  # 1-based
    return ReuseProfile(
        n_accesses=n,
        n_lines=int(boundary.sum()),
        reuse_hist=hist,
        first_times=firsts,
        last_times=lasts,
    )


@dataclass(frozen=True)
class FootprintCurve:
    """Average footprint fp(w): mean distinct lines per window of w accesses."""

    n_accesses: int
    n_lines: int
    values: np.ndarray  # values[w] = fp(w) for w in 0..n_accesses

    def __call__(self, w: np.ndarray | int | float) -> np.ndarray:
        w_arr = np.clip(np.asarray(w, dtype=np.int64), 0, self.n_accesses)
        return self.values[w_arr]

    def window_for_capacity(self, capacity_lines: float) -> int:
        """Largest window w with fp(w) <= capacity (0 if even fp(1) > C)."""
        # fp is non-decreasing in w.
        idx = int(np.searchsorted(self.values, capacity_lines, side="right")) - 1
        return max(idx, 0)


def footprint_curve(profile: ReuseProfile) -> FootprintCurve:
    """Xiang's O(N) average-footprint formula.

    With accesses numbered 1..n over m distinct lines::

        fp(w) = m - ( sum_{t>w} (t-w) * rt(t)
                     + sum_k max(f_k - w, 0)
                     + sum_k max(r_k - w, 0) ) / (n - w + 1)

    where ``f_k`` is the first-access time of line k and
    ``r_k = n + 1 - last_k`` its reverse last-access time.  The three
    sums over all w are evaluated with reversed cumulative sums of the
    respective histograms.
    """
    n, m = profile.n_accesses, profile.n_lines
    values = np.zeros(n + 1, dtype=np.float64)
    if n == 0:
        return FootprintCurve(0, 0, values)

    def deficit(hist_vals: np.ndarray) -> np.ndarray:
        """For each w in 0..n: sum_{t>w} (t - w) * hist[t]."""
        h = np.zeros(n + 1, dtype=np.float64)
        idx = np.minimum(np.arange(hist_vals.size), n)
        np.add.at(h, idx, hist_vals)
        t = np.arange(n + 1, dtype=np.float64)
        count_gt = np.concatenate([np.cumsum(h[::-1])[::-1][1:], [0.0]])
        weight_gt = np.concatenate([np.cumsum((h * t)[::-1])[::-1][1:], [0.0]])
        w = np.arange(n + 1, dtype=np.float64)
        return weight_gt - w * count_gt

    rt_deficit = deficit(profile.reuse_hist)
    f_hist = np.bincount(profile.first_times, minlength=n + 1).astype(np.float64)
    r_times = n + 1 - profile.last_times
    r_hist = np.bincount(r_times, minlength=n + 1).astype(np.float64)
    f_deficit = deficit(f_hist)
    r_deficit = deficit(r_hist)

    w = np.arange(n + 1, dtype=np.float64)
    denom = n - w + 1.0
    fp = m - (rt_deficit + f_deficit + r_deficit) / denom
    fp[0] = 0.0
    # Guard numerical noise: fp must be within [0, m] and non-decreasing.
    fp = np.clip(fp, 0.0, float(m))
    fp = np.maximum.accumulate(fp)
    return FootprintCurve(n, m, fp)


@dataclass(frozen=True)
class MissRatioCurve:
    """Predicted LRU misses of a stream as a function of cache capacity."""

    profile: ReuseProfile
    footprint: FootprintCurve

    def misses(self, capacity_lines: float) -> int:
        """Total predicted misses (cold + capacity) at the given capacity."""
        if capacity_lines <= 0:
            return self.profile.n_accesses
        if self.profile.n_accesses == 0:
            return 0
        w_star = self.footprint.window_for_capacity(capacity_lines)
        hist = self.profile.reuse_hist
        # Accesses with reuse time > w_star miss; rt==0 bucket holds colds
        # only implicitly (cold accesses are excluded from the histogram).
        reuse_misses = int(hist[min(w_star, hist.size - 1) + 1 :].sum()) if w_star + 1 < hist.size else 0
        return self.profile.cold_misses + reuse_misses

    def miss_ratio(self, capacity_lines: float) -> float:
        """Predicted misses divided by total accesses."""
        n = self.profile.n_accesses
        return self.misses(capacity_lines) / n if n else 0.0

    def curve(self, capacities: np.ndarray) -> np.ndarray:
        """Miss ratio evaluated at each capacity in the array."""
        return np.array([self.miss_ratio(c) for c in np.asarray(capacities)])


def miss_ratio_curve(lines: np.ndarray) -> MissRatioCurve:
    """Build the full locality model of a line-id stream."""
    profile = reuse_profile(lines)
    return MissRatioCurve(profile, footprint_curve(profile))
