"""SCC chip power model.

Full-chip power is modeled as a static floor plus dynamic ``C·V²·f``
terms per clock domain::

    P = P_static
        + a_core * sum_tiles V_core(f_tile)^2 * f_tile
        + a_mesh * V_mesh(f_mesh)^2 * f_mesh
        + a_mem  * f_mem

The voltage-frequency pairs come from the SCC EAS operating points.
The four coefficients are calibrated once against the only two absolute
wattages the paper publishes — 83.3 W running SpMV on 48 cores at
conf0 (533/800/800 MHz) and 107.4 W at conf1 (800/1600/1066 MHz) — with
the static floor pinned near the ~60 W idle draw reported for the SCC
by Gschwandtner et al.  All Fig. 9(b)/10(b) efficiency numbers are then
model outputs, not further fits.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "core_voltage",
    "mesh_voltage",
    "chip_power",
    "P_STATIC_WATTS",
]

# Voltage operating points (volts) per core frequency step (MHz).
_CORE_VF: Mapping[int, float] = {
    100: 0.70,
    200: 0.70,
    267: 0.75,
    320: 0.80,
    400: 0.85,
    533: 0.90,
    800: 1.10,
}

_MESH_VF: Mapping[int, float] = {800: 0.90, 1600: 1.10}

# Calibrated coefficients (see module docstring).
P_STATIC_WATTS = 61.19
_A_CORE = 0.0015   # W / (MHz * V^2) per tile
_A_MESH = 0.00243  # W / (MHz * V^2)
_A_MEM = 0.00625   # W / MHz (all four controllers together)


def core_voltage(core_mhz: float) -> float:
    """Supply voltage needed for a tile at ``core_mhz``.

    Exact menu frequencies map to their EAS operating point; other
    values take the voltage of the next menu step up (the chip cannot
    undervolt below the step that sustains the frequency).
    """
    if core_mhz <= 0:
        raise ValueError(f"core_mhz must be positive, got {core_mhz}")
    for f in sorted(_CORE_VF):
        if core_mhz <= f:
            return _CORE_VF[f]
    raise ValueError(f"core_mhz {core_mhz} exceeds the 800 MHz maximum")


def mesh_voltage(mesh_mhz: float) -> float:
    """Supply voltage needed for the mesh at this clock."""
    if mesh_mhz <= 0:
        raise ValueError(f"mesh_mhz must be positive, got {mesh_mhz}")
    for f in sorted(_MESH_VF):
        if mesh_mhz <= f:
            return _MESH_VF[f]
    raise ValueError(f"mesh_mhz {mesh_mhz} exceeds the 1.6 GHz maximum")


def chip_power(
    tile_mhz: Sequence[float],
    mesh_mhz: float,
    mem_mhz: float,
) -> float:
    """Full-chip power in watts for the given per-tile core frequencies.

    ``tile_mhz`` must contain one entry per powered tile (24 for the
    full chip).  Tiles running at 0 MHz are treated as power-gated and
    contribute nothing dynamic.
    """
    if mem_mhz <= 0:
        raise ValueError(f"mem_mhz must be positive, got {mem_mhz}")
    p = P_STATIC_WATTS
    for f in tile_mhz:
        if f < 0:
            raise ValueError(f"tile frequency must be >= 0, got {f}")
        if f > 0:
            v = core_voltage(f)
            p += _A_CORE * v * v * f
    v_mesh = mesh_voltage(mesh_mhz)
    p += _A_MESH * v_mesh * v_mesh * mesh_mhz
    p += _A_MEM * mem_mhz
    return p
