"""Chip-level configuration: frequency domains and the paper's presets.

:class:`SCCConfig` bundles everything the paper varies at boot time —
per-tile core clock, mesh clock, memory clock, and whether the L2
caches were enabled — and validates each against the SCC menus.  The
three configurations of Sec. IV-D are available as ``CONF0`` (default),
``CONF1`` and ``CONF2``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from .params import (
    CORE_FREQS_MHZ,
    DEFAULT_CORE_MHZ,
    DEFAULT_MEM_MHZ,
    DEFAULT_MESH_MHZ,
    MEM_FREQS_MHZ,
    MESH_FREQS_MHZ,
)
from .power import chip_power
from .topology import N_TILES

__all__ = ["SCCConfig", "CONF0", "CONF1", "CONF2", "PRESETS"]


@dataclass(frozen=True)
class SCCConfig:
    """One bootable chip configuration.

    ``tile_mhz`` holds 24 per-tile core frequencies (the SCC lets every
    tile pick its own step).  The uniform-frequency constructor
    :meth:`uniform` covers the paper's configurations.
    """

    name: str
    tile_mhz: Tuple[float, ...]
    mesh_mhz: float = DEFAULT_MESH_MHZ
    mem_mhz: float = DEFAULT_MEM_MHZ
    l2_enabled: bool = True

    def __post_init__(self) -> None:
        if len(self.tile_mhz) != N_TILES:
            raise ValueError(
                f"tile_mhz must have {N_TILES} entries, got {len(self.tile_mhz)}"
            )
        for f in self.tile_mhz:
            if f not in CORE_FREQS_MHZ:
                raise ValueError(
                    f"core frequency {f} MHz not on the SCC menu {CORE_FREQS_MHZ}"
                )
        if self.mesh_mhz not in MESH_FREQS_MHZ:
            raise ValueError(
                f"mesh frequency {self.mesh_mhz} MHz not on the menu {MESH_FREQS_MHZ}"
            )
        if self.mem_mhz not in MEM_FREQS_MHZ:
            raise ValueError(
                f"memory frequency {self.mem_mhz} MHz not on the menu {MEM_FREQS_MHZ}"
            )

    @classmethod
    def uniform(
        cls,
        name: str,
        core_mhz: float = DEFAULT_CORE_MHZ,
        mesh_mhz: float = DEFAULT_MESH_MHZ,
        mem_mhz: float = DEFAULT_MEM_MHZ,
        l2_enabled: bool = True,
    ) -> "SCCConfig":
        """Config with every tile at the same core frequency."""
        return cls(
            name=name,
            tile_mhz=(core_mhz,) * N_TILES,
            mesh_mhz=mesh_mhz,
            mem_mhz=mem_mhz,
            l2_enabled=l2_enabled,
        )

    def core_mhz_of_tile(self, tile_id: int) -> float:
        """Core clock (MHz) of one tile."""
        return self.tile_mhz[tile_id]

    def core_mhz_of_core(self, core: int) -> float:
        """Core clock (MHz) of the tile owning this core."""
        return self.tile_mhz[core // 2]

    @property
    def is_uniform(self) -> bool:
        """True when all 24 tiles share one frequency."""
        return len(set(self.tile_mhz)) == 1

    @property
    def core_mhz(self) -> float:
        """Uniform core frequency; raises if tiles differ."""
        if not self.is_uniform:
            raise ValueError(f"config {self.name!r} has per-tile frequencies")
        return self.tile_mhz[0]

    def full_chip_power(self) -> float:
        """Watts with all 24 tiles powered (the paper's 'full system')."""
        return chip_power(self.tile_mhz, self.mesh_mhz, self.mem_mhz)

    def with_l2(self, enabled: bool) -> "SCCConfig":
        """Copy of this config with the L2 caches toggled."""
        suffix = "" if enabled else "+noL2"
        return replace(self, name=self.name + suffix, l2_enabled=enabled)


#: conf0 — the paper's default: cores 533, mesh 800, memory 800 MHz.
CONF0 = SCCConfig.uniform("conf0", 533, 800, 800)
#: conf1 — everything at maximum: 800 / 1600 / 1066 MHz.
CONF1 = SCCConfig.uniform("conf1", 800, 1600, 1066)
#: conf2 — fast cores and mesh, default memory: 800 / 1600 / 800 MHz.
CONF2 = SCCConfig.uniform("conf2", 800, 1600, 800)

PRESETS = {"conf0": CONF0, "conf1": CONF1, "conf2": CONF2}
