"""Exact address-trace generation for the CSR SpMV kernel.

:func:`spmv_address_trace` emits the byte-address stream the Fig. 2
kernel issues for a row block, in program order::

    for i in rows:
        load ptr[i], ptr[i+1]
        for j in ptr[i]..ptr[i+1]:
            load index[j]; load da[j]; load x[index[j]]
        store y[i]

These traces feed the exact cache hierarchy
(:class:`~repro.scc.cache.CacheHierarchy`) to produce *trace-exact*
hit/miss counts — the ground truth that the fast analytical
characterization of :mod:`repro.core.trace` is validated against (see
``tests/test_scc_tracegen.py`` and ablation bench A2).

:func:`replay_trace` offers two engines.  ``engine="scalar"`` walks the
hierarchy one address per Python iteration — the oracle, reserved for
validation-scale traces.  ``engine="vectorized"`` replays through the
set-parallel engine (:mod:`repro.scc.vecreplay`), bitwise-identical by
the differential contract, and adds two levers of its own:

* **iteration cycling** — the per-pass trace is identical, so the
  hierarchy state (a finite, deterministic machine) eventually cycles;
  once a state digest repeats, every remaining iteration's counts are
  the recorded cycle deltas, summed without simulating; and
* a **content-addressed disk cache** (:mod:`repro.store`, namespace
  ``replay``) keyed by the matrix pattern digest, row range, layout,
  cache geometry and iteration count, so campaigns and the differential
  harness never replay the same block twice.

:func:`spmv_address_trace_chunks` streams the same trace in bounded
row-block chunks (O(chunk) memory); feeding the chunks through one
persistent hierarchy is exactly equivalent to one concatenated trace,
so the vectorized path scales to traces that never fit in memory.

The arrays are laid out at disjoint, page-aligned virtual bases; with a
modulo-indexed cache only the relative offsets matter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..sparse.csr import CSRMatrix
from ..store import ContentStore, digest_parts
from .cache import CacheHierarchy
from .params import CACHE_ASSOC, CACHE_LINE_BYTES, L1D_BYTES, L2_BYTES
from .vecreplay import VectorCacheHierarchy, compile_schedule, fingerprints_equal

__all__ = [
    "TraceLayout",
    "DEFAULT_LAYOUT",
    "spmv_address_trace",
    "spmv_address_trace_chunks",
    "replay_trace",
    "TraceCounts",
    "REPLAY_ENGINES",
    "CHUNK_ACCESSES",
    "REPLAY_SCHEMA_VERSION",
]

REPLAY_ENGINES = ("scalar", "vectorized")

#: default chunk bound for streaming trace generation: ~50 MB of
#: address+write arrays per chunk, far below full-suite trace sizes.
CHUNK_ACCESSES = 4_000_000

#: bump when the replay algorithm or the cached payload shape changes;
#: old disk entries are orphaned rather than reinterpreted.
#: v2: the machine's :meth:`repro.machine.base.MachineModel.cache_key`
#: entered the content address (multi-machine model zoo).
REPLAY_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TraceLayout:
    """Virtual base addresses of the five kernel arrays."""

    # Bases are staggered by odd multiples of ~8 KB so the five arrays
    # start in different cache sets, as real page-aligned allocations
    # do.  Identical low bits (all zero mod the 64 KB set stride) would
    # pile every array onto set 0 and fabricate conflict misses.
    ptr_base: int = 0x1000_0000
    index_base: int = 0x2000_2040
    da_base: int = 0x3000_4080
    x_base: int = 0x4000_60C0
    y_base: int = 0x5000_8100

    def __post_init__(self) -> None:
        bases = sorted(
            (self.ptr_base, self.index_base, self.da_base, self.x_base, self.y_base)
        )
        for lo, hi in zip(bases, bases[1:]):
            if hi - lo < 0x0100_0000:  # 16 MB guard: arrays must not overlap
                raise ValueError("array bases must be at least 16 MB apart")


DEFAULT_LAYOUT = TraceLayout()


def spmv_address_trace(
    a: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    no_x_miss: bool = False,
    layout: TraceLayout = DEFAULT_LAYOUT,
) -> Tuple[np.ndarray, np.ndarray]:
    """Byte-address trace of one SpMV pass over rows [row_start, row_stop).

    Returns ``(addrs, writes)`` in program order.  ``no_x_miss=True``
    generates the Sec. IV-C variant where every gather reads ``x[0]``.
    The construction is fully vectorized.
    """
    stop = a.n_rows if row_stop is None else row_stop
    if not (0 <= row_start <= stop <= a.n_rows):
        raise ValueError(f"bad row range [{row_start}, {stop})")
    rows = stop - row_start
    lo, hi = int(a.ptr[row_start]), int(a.ptr[stop])
    nnz = hi - lo
    lengths = np.diff(a.ptr[row_start : stop + 1]).astype(np.int64)

    n_accesses = 3 * rows + 3 * nnz
    addrs = np.empty(n_accesses, dtype=np.int64)
    writes = np.zeros(n_accesses, dtype=bool)
    if n_accesses == 0:
        return addrs, writes

    # Position bookkeeping: row i's accesses start at base_i and occupy
    # [2 ptr loads][3 per nonzero][1 y store].
    row_base = np.zeros(rows, dtype=np.int64)
    if rows > 1:
        np.cumsum(3 * lengths[:-1] + 3, out=row_base[1:])

    row_ids = np.arange(row_start, stop, dtype=np.int64)
    # ptr[i] and ptr[i+1] loads.
    addrs[row_base] = layout.ptr_base + 4 * row_ids
    addrs[row_base + 1] = layout.ptr_base + 4 * (row_ids + 1)
    # y[i] store at the end of each row.
    y_pos = row_base + 2 + 3 * lengths
    addrs[y_pos] = layout.y_base + 8 * row_ids
    writes[y_pos] = True

    if nnz:
        # Element positions: for nonzero k (global, 0-based within the
        # block) in row i at local offset l: base_i + 2 + 3l (+0/1/2).
        elem_rows = np.repeat(np.arange(rows, dtype=np.int64), lengths)
        local = np.arange(nnz, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
        )
        elem_base = row_base[elem_rows] + 2 + 3 * local
        j = np.arange(lo, hi, dtype=np.int64)
        addrs[elem_base] = layout.index_base + 4 * j
        addrs[elem_base + 1] = layout.da_base + 8 * j
        if no_x_miss:
            addrs[elem_base + 2] = layout.x_base
        else:
            addrs[elem_base + 2] = layout.x_base + 8 * a.index[lo:hi].astype(np.int64)
    return addrs, writes


def spmv_address_trace_chunks(
    a: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    no_x_miss: bool = False,
    layout: TraceLayout = DEFAULT_LAYOUT,
    max_accesses: int = CHUNK_ACCESSES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream the trace of rows [row_start, row_stop) in row-block chunks.

    Yields ``(addrs, writes)`` pairs covering consecutive row blocks;
    concatenating them reproduces :func:`spmv_address_trace` exactly,
    so replaying chunks through one persistent hierarchy is equivalent
    to replaying the full trace while memory stays O(``max_accesses``).
    Each chunk holds at most ``max_accesses`` accesses, except that a
    single row whose own trace exceeds the bound is emitted alone
    (rows are never split).
    """
    stop = a.n_rows if row_stop is None else row_stop
    if not (0 <= row_start <= stop <= a.n_rows):
        raise ValueError(f"bad row range [{row_start}, {stop})")
    if max_accesses < 1:
        raise ValueError(f"max_accesses must be >= 1, got {max_accesses}")

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # Cumulative access count up to row i: g[i] = 3*i + 3*ptr[i].
        g = 3 * np.arange(a.n_rows + 1, dtype=np.int64) + 3 * a.ptr
        r = row_start
        while r < stop:
            r2 = int(np.searchsorted(g, g[r] + max_accesses, side="right")) - 1
            r2 = max(r + 1, min(r2, stop))
            yield spmv_address_trace(a, r, r2, no_x_miss, layout)
            r = r2

    return chunks()


@dataclass(frozen=True)
class TraceCounts:
    """Hit/miss totals from replaying a trace through the hierarchy."""

    l1_hits: int
    l2_hits: int
    mem_misses: int

    @property
    def accesses(self) -> int:
        """Total accesses replayed (hits + misses)."""
        return self.l1_hits + self.l2_hits + self.mem_misses


def _replay_cache_key(
    a: CSRMatrix,
    row_start: int,
    row_stop: int,
    iterations: int,
    no_x_miss: bool,
    l2_enabled: bool,
    layout: TraceLayout,
    machine_key: str = "scc-48",
) -> str:
    """Disk-cache key: every input the replay result depends on.

    The matrix enters via its sparsity-pattern digest (values never
    affect the trace); the cache geometry constants and the machine's
    :meth:`~repro.machine.base.MachineModel.cache_key` are included so
    a parameter change — or a different modeled machine — can never
    resurface a stale count.
    """
    return digest_parts(
        "replay",
        REPLAY_SCHEMA_VERSION,
        machine_key,
        a.pattern_digest(),
        row_start,
        row_stop,
        iterations,
        no_x_miss,
        l2_enabled,
        layout.ptr_base,
        layout.index_base,
        layout.da_base,
        layout.x_base,
        layout.y_base,
        L1D_BYTES,
        L2_BYTES,
        CACHE_ASSOC,
        CACHE_LINE_BYTES,
    )


def _hierarchy_stats(h: VectorCacheHierarchy) -> Tuple[Tuple[int, int, int, int], ...]:
    """Per-level (hits, misses, evictions, writebacks) snapshot."""
    levels = [h.l1] + ([h.l2] if h.l2 is not None else [])
    return tuple(
        (lv.stats.hits, lv.stats.misses, lv.stats.evictions, lv.stats.writebacks)
        for lv in levels
    )


def _state_digest(h: VectorCacheHierarchy) -> str:
    """Hash of the full hierarchy state (tags, dirty, PLRU, both levels)."""
    hasher = hashlib.sha256()
    for arr in h.state_fingerprint():
        hasher.update(arr.tobytes())
    return hasher.hexdigest()


def _replay_vectorized(
    a: CSRMatrix,
    row_start: int,
    row_stop: int,
    iterations: int,
    no_x_miss: bool,
    layout: TraceLayout,
    h: VectorCacheHierarchy,
    chunk_accesses: int,
) -> Tuple[TraceCounts, Dict[str, int]]:
    """Set-parallel replay with exact iteration-cycle fast-forward.

    The per-iteration trace is identical, and the hierarchy is a finite
    deterministic state machine driven by it — so the sequence of
    post-iteration states must eventually enter a cycle.  Once a state
    recurs (digest match confirmed by exact fingerprint comparison),
    iteration k reproduces the counts of iteration k - period for every
    remaining k, and the tail is summed from the recorded per-iteration
    deltas.  Counts and per-level stats stay bitwise-identical to
    simulating every iteration.
    """
    n_total = 3 * (row_stop - row_start) + 3 * int(a.ptr[row_stop] - a.ptr[row_start])
    single_chunk = n_total <= chunk_accesses
    steps_before = h.steps_run
    collapsed_before = h.collapsed_hits
    tail_before = h.tail_accesses

    if single_chunk:
        addrs, writes = spmv_address_trace(a, row_start, row_stop, no_x_miss, layout)
        lines = addrs // h.line_bytes
        # The L1 schedule depends only on the stream: compile once,
        # replay every iteration.
        l1_sched = compile_schedule(lines, writes, h.l1.n_sets)

        def run_pass() -> Dict[str, int]:
            return h.access_lines(lines, writes, l1_schedule=l1_sched)

    else:

        def run_pass() -> Dict[str, int]:
            counts = {"l1": 0, "l2": 0, "mem": 0}
            for addrs, writes in spmv_address_trace_chunks(
                a, row_start, row_stop, no_x_miss, layout, max_accesses=chunk_accesses
            ):
                chunk = h.access_trace(addrs, writes)
                for key in counts:
                    counts[key] += chunk[key]
            return counts

    totals = {"l1": 0, "l2": 0, "mem": 0}
    seen: Dict[str, Tuple[int, Tuple[np.ndarray, ...]]] = {}
    count_deltas: List[Dict[str, int]] = []
    stats_deltas: List[Tuple[Tuple[int, int, int, int], ...]] = []
    simulated = 0
    fast_forwarded = 0
    while simulated < iterations:
        stats_before = _hierarchy_stats(h)
        counts = run_pass()
        simulated += 1
        for key in totals:
            totals[key] += counts[key]
        count_deltas.append(counts)
        stats_after = _hierarchy_stats(h)
        stats_deltas.append(
            tuple(
                tuple(after - before for after, before in zip(lvl_a, lvl_b))
                for lvl_a, lvl_b in zip(stats_after, stats_before)
            )
        )
        if simulated == iterations:
            break
        digest = _state_digest(h)
        hit = seen.get(digest)
        if hit is not None and fingerprints_equal(hit[1], h.state_fingerprint()):
            start = hit[0]  # state after `start` iterations == state now
            period = simulated - start
            remaining = iterations - simulated
            fast_forwarded = remaining
            # Iteration start+1+r (r >= 0) repeats delta index start + r % period.
            level_sums = [[0, 0, 0, 0] for _ in stats_deltas[0]]
            for r in range(remaining):
                cyc_counts = count_deltas[start + r % period]
                for key in totals:
                    totals[key] += cyc_counts[key]
                for lvl, delta in zip(level_sums, stats_deltas[start + r % period]):
                    for i in range(4):
                        lvl[i] += delta[i]
            levels = [h.l1] + ([h.l2] if h.l2 is not None else [])
            for lv, (d_hits, d_misses, d_ev, d_wb) in zip(levels, level_sums):
                lv.stats.hits += d_hits
                lv.stats.misses += d_misses
                lv.stats.evictions += d_ev
                lv.stats.writebacks += d_wb
            break
        seen[digest] = (simulated, h.state_fingerprint())
    detail = {
        "accesses": n_total * iterations,
        "simulated_iterations": simulated,
        "fastforward_iterations": fast_forwarded,
        "steps": h.steps_run - steps_before,
        "collapsed_hits": h.collapsed_hits - collapsed_before,
        "tail_accesses": h.tail_accesses - tail_before,
    }
    return TraceCounts(totals["l1"], totals["l2"], totals["mem"]), detail


def replay_trace(
    a: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    iterations: int = 1,
    no_x_miss: bool = False,
    l2_enabled: bool = True,
    layout: TraceLayout = DEFAULT_LAYOUT,
    hierarchy: Optional[Union[CacheHierarchy, VectorCacheHierarchy]] = None,
    engine: str = "scalar",
    chunk_accesses: int = CHUNK_ACCESSES,
    use_disk_cache: Optional[bool] = None,
    tracer=None,
    machine_key: str = "scc-48",
) -> TraceCounts:
    """Run ``iterations`` SpMV passes through an exact cache hierarchy.

    A fresh SCC-geometry hierarchy is used unless one is supplied
    (supplying one lets callers observe warm-cache behaviour across
    calls).  Returns cumulative counts over all iterations.

    ``engine="scalar"`` is the per-access oracle; ``engine="vectorized"``
    produces bitwise-identical counts via :mod:`repro.scc.vecreplay`,
    streams the trace in ``chunk_accesses`` chunks, fast-forwards
    repeated iterations once the cache state cycles, and memoizes
    results in the content-addressed disk store (cold-hierarchy runs
    only; disable with ``use_disk_cache=False`` or globally via
    ``REPRO_NO_DISK_CACHE=1``).  A ``tracer`` records replay-throughput
    counters under ``replay.*``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
    stop = a.n_rows if row_stop is None else row_stop

    if engine == "scalar":
        h = hierarchy if hierarchy is not None else CacheHierarchy(l2_enabled=l2_enabled)
        addrs, writes = spmv_address_trace(a, row_start, stop, no_x_miss, layout)
        totals = {"l1": 0, "l2": 0, "mem": 0}
        for _ in range(iterations):
            counts = h.access_trace(addrs, writes)
            for k in totals:
                totals[k] += counts[k]
        return TraceCounts(totals["l1"], totals["l2"], totals["mem"])

    # Disk memoization only applies to cold-hierarchy replays: a warm
    # hierarchy makes the result depend on state the key cannot see.
    memoize = hierarchy is None if use_disk_cache is None else (
        use_disk_cache and hierarchy is None
    )
    store = ContentStore(namespace="replay") if memoize else None
    key = ""
    if store is not None:
        key = _replay_cache_key(
            a, row_start, stop, iterations, no_x_miss, l2_enabled, layout, machine_key
        )
        entry = store.get_json(key)
        if entry is not None:
            if tracer:
                tracer.metrics.counter("replay.disk.hits").inc()
            return TraceCounts(
                int(entry["l1_hits"]), int(entry["l2_hits"]), int(entry["mem_misses"])
            )

    if hierarchy is not None and not isinstance(hierarchy, VectorCacheHierarchy):
        raise TypeError(
            "engine='vectorized' requires a VectorCacheHierarchy, got "
            f"{type(hierarchy).__name__}"
        )
    vh = hierarchy if hierarchy is not None else VectorCacheHierarchy(l2_enabled=l2_enabled)
    counts, detail = _replay_vectorized(
        a, row_start, stop, iterations, no_x_miss, layout, vh, chunk_accesses
    )
    if tracer:
        m = tracer.metrics
        if store is not None:
            m.counter("replay.disk.misses").inc()
        m.counter("replay.accesses").inc(detail["accesses"])
        m.counter("replay.simulated_iterations").inc(detail["simulated_iterations"])
        m.counter("replay.fastforward_iterations").inc(detail["fastforward_iterations"])
        m.counter("replay.steps").inc(detail["steps"])
        m.counter("replay.collapsed_hits").inc(detail["collapsed_hits"])
        m.counter("replay.tail_accesses").inc(detail["tail_accesses"])
    if store is not None:
        store.put_json(
            key,
            {
                "l1_hits": counts.l1_hits,
                "l2_hits": counts.l2_hits,
                "mem_misses": counts.mem_misses,
            },
        )
    return counts
