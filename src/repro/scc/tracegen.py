"""Exact address-trace generation for the CSR SpMV kernel.

:func:`spmv_address_trace` emits the byte-address stream the Fig. 2
kernel issues for a row block, in program order::

    for i in rows:
        load ptr[i], ptr[i+1]
        for j in ptr[i]..ptr[i+1]:
            load index[j]; load da[j]; load x[index[j]]
        store y[i]

These traces feed the exact cache hierarchy
(:class:`~repro.scc.cache.CacheHierarchy`) to produce *trace-exact*
hit/miss counts — the ground truth that the fast analytical
characterization of :mod:`repro.core.trace` is validated against (see
``tests/test_scc_tracegen.py`` and ablation bench A2).  Trace replay is
O(N) Python per access, so it is reserved for validation-scale
matrices.

The arrays are laid out at disjoint, page-aligned virtual bases; with a
modulo-indexed cache only the relative offsets matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from .cache import CacheHierarchy

__all__ = [
    "TraceLayout",
    "DEFAULT_LAYOUT",
    "spmv_address_trace",
    "replay_trace",
    "TraceCounts",
]


@dataclass(frozen=True)
class TraceLayout:
    """Virtual base addresses of the five kernel arrays."""

    # Bases are staggered by odd multiples of ~8 KB so the five arrays
    # start in different cache sets, as real page-aligned allocations
    # do.  Identical low bits (all zero mod the 64 KB set stride) would
    # pile every array onto set 0 and fabricate conflict misses.
    ptr_base: int = 0x1000_0000
    index_base: int = 0x2000_2040
    da_base: int = 0x3000_4080
    x_base: int = 0x4000_60C0
    y_base: int = 0x5000_8100

    def __post_init__(self) -> None:
        bases = sorted(
            (self.ptr_base, self.index_base, self.da_base, self.x_base, self.y_base)
        )
        for lo, hi in zip(bases, bases[1:]):
            if hi - lo < 0x0100_0000:  # 16 MB guard: arrays must not overlap
                raise ValueError("array bases must be at least 16 MB apart")


DEFAULT_LAYOUT = TraceLayout()


def spmv_address_trace(
    a: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    no_x_miss: bool = False,
    layout: TraceLayout = DEFAULT_LAYOUT,
) -> Tuple[np.ndarray, np.ndarray]:
    """Byte-address trace of one SpMV pass over rows [row_start, row_stop).

    Returns ``(addrs, writes)`` in program order.  ``no_x_miss=True``
    generates the Sec. IV-C variant where every gather reads ``x[0]``.
    The construction is fully vectorized.
    """
    stop = a.n_rows if row_stop is None else row_stop
    if not (0 <= row_start <= stop <= a.n_rows):
        raise ValueError(f"bad row range [{row_start}, {stop})")
    rows = stop - row_start
    lo, hi = int(a.ptr[row_start]), int(a.ptr[stop])
    nnz = hi - lo
    lengths = np.diff(a.ptr[row_start : stop + 1]).astype(np.int64)

    n_accesses = 3 * rows + 3 * nnz
    addrs = np.empty(n_accesses, dtype=np.int64)
    writes = np.zeros(n_accesses, dtype=bool)
    if n_accesses == 0:
        return addrs, writes

    # Position bookkeeping: row i's accesses start at base_i and occupy
    # [2 ptr loads][3 per nonzero][1 y store].
    row_base = np.zeros(rows, dtype=np.int64)
    if rows > 1:
        np.cumsum(3 * lengths[:-1] + 3, out=row_base[1:])

    row_ids = np.arange(row_start, stop, dtype=np.int64)
    # ptr[i] and ptr[i+1] loads.
    addrs[row_base] = layout.ptr_base + 4 * row_ids
    addrs[row_base + 1] = layout.ptr_base + 4 * (row_ids + 1)
    # y[i] store at the end of each row.
    y_pos = row_base + 2 + 3 * lengths
    addrs[y_pos] = layout.y_base + 8 * row_ids
    writes[y_pos] = True

    if nnz:
        # Element positions: for nonzero k (global, 0-based within the
        # block) in row i at local offset l: base_i + 2 + 3l (+0/1/2).
        elem_rows = np.repeat(np.arange(rows, dtype=np.int64), lengths)
        local = np.arange(nnz, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
        )
        elem_base = row_base[elem_rows] + 2 + 3 * local
        j = np.arange(lo, hi, dtype=np.int64)
        addrs[elem_base] = layout.index_base + 4 * j
        addrs[elem_base + 1] = layout.da_base + 8 * j
        if no_x_miss:
            addrs[elem_base + 2] = layout.x_base
        else:
            addrs[elem_base + 2] = layout.x_base + 8 * a.index[lo:hi].astype(np.int64)
    return addrs, writes


@dataclass(frozen=True)
class TraceCounts:
    """Hit/miss totals from replaying a trace through the hierarchy."""

    l1_hits: int
    l2_hits: int
    mem_misses: int

    @property
    def accesses(self) -> int:
        """Total accesses replayed (hits + misses)."""
        return self.l1_hits + self.l2_hits + self.mem_misses


def replay_trace(
    a: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    iterations: int = 1,
    no_x_miss: bool = False,
    l2_enabled: bool = True,
    layout: TraceLayout = DEFAULT_LAYOUT,
    hierarchy: Optional[CacheHierarchy] = None,
) -> TraceCounts:
    """Run ``iterations`` SpMV passes through an exact cache hierarchy.

    A fresh SCC-geometry hierarchy is used unless one is supplied
    (supplying one lets callers observe warm-cache behaviour across
    calls).  Returns cumulative counts over all iterations.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    h = hierarchy if hierarchy is not None else CacheHierarchy(l2_enabled=l2_enabled)
    addrs, writes = spmv_address_trace(a, row_start, row_stop, no_x_miss, layout)
    totals = {"l1": 0, "l2": 0, "mem": 0}
    for _ in range(iterations):
        counts = h.access_trace(addrs, writes)
        for k in totals:
            totals[k] += counts[k]
    return TraceCounts(totals["l1"], totals["l2"], totals["mem"])
