"""P54C core timing: compose per-core SpMV time from an access summary.

The P54C is a two-issue in-order Pentium with blocking caches, so core
time decomposes additively::

    T = ( base_work + row_overhead + call_overhead
          + L2_hits * l2_hit_cycles ) / f_core
        + L2_misses * effective_memory_line_time

:class:`AccessSummary` carries the counts; :func:`core_time` does the
arithmetic.  Nothing here knows about matrices — the CSR-specific trace
characterization lives in :mod:`repro.core.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import DEFAULT_TIMING, P54CTimingParams

__all__ = ["AccessSummary", "core_time", "core_flops"]


@dataclass(frozen=True)
class AccessSummary:
    """Cache-level outcome counts of one core's kernel execution.

    ``l2_misses`` are *lines fetched from memory* (each stalls the core
    for the effective memory line time).  ``l2_hits`` are L1 misses that
    the L2 served.  L1 hits are folded into ``base_cycles``.
    """

    nnz: int                 #: nonzeros processed by this core
    rows: int                #: rows processed by this core
    iterations: int          #: SpMV repetitions timed
    l2_hits: float           #: L1-miss/L2-hit count (total, all iterations)
    l2_misses: float         #: memory line fetches (total, all iterations)

    def __post_init__(self) -> None:
        if self.nnz < 0 or self.rows < 0 or self.iterations < 0:
            raise ValueError("counts must be non-negative")
        if self.l2_hits < 0 or self.l2_misses < 0:
            raise ValueError("cache counts must be non-negative")

    @property
    def flops(self) -> int:
        """Floating-point operations: 2 per nonzero per iteration (paper Sec. IV)."""
        return 2 * self.nnz * self.iterations


def core_time(
    summary: AccessSummary,
    core_mhz: float,
    memory_line_time: float,
    timing: P54CTimingParams = DEFAULT_TIMING,
) -> float:
    """Seconds one core spends executing the summarized kernel."""
    if core_mhz <= 0:
        raise ValueError(f"core_mhz must be positive, got {core_mhz}")
    if memory_line_time < 0:
        raise ValueError(f"memory_line_time must be >= 0, got {memory_line_time}")
    cycles = (
        timing.base_cycles_per_nnz * summary.nnz * summary.iterations
        + timing.row_overhead_cycles * summary.rows * summary.iterations
        + timing.call_overhead_cycles * summary.iterations
        + timing.l2_hit_cycles * summary.l2_hits
    )
    t_core = cycles / (core_mhz * 1e6)
    t_mem = summary.l2_misses * memory_line_time
    return t_core + t_mem


def core_flops(summary: AccessSummary, time_seconds: float) -> float:
    """FLOPS/s given a summary and its execution time."""
    if time_seconds <= 0:
        raise ValueError(f"time must be positive, got {time_seconds}")
    return summary.flops / time_seconds
