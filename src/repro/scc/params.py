"""Calibrated SCC model parameters.

Every physical constant of the SCC model lives here, with the source of
each value.  Three kinds of numbers appear:

* **Published architecture facts** — taken from the SCC External
  Architecture Specification (EAS) and the paper's Section II (tile
  grid, cache geometry, frequency menus, latency formula coefficients).
* **Published measurements** — the memory-controller bandwidth band
  reported by Melot et al. (ref. [10] of the paper).
* **Calibrated constants** — the P54C per-element SpMV costs, which the
  paper does not publish.  These were fit once against the paper's
  anchor observations (Sec. 5 of DESIGN.md: ~12 % single-core 3-hop
  degradation, ~1 GFLOPS/s L2-resident at 24 cores, 400–500 MFLOPS/s
  memory-bound band at 48 cores) and are then held fixed for *all*
  experiments.  ``benchmarks/test_ablation_sensitivity.py`` shows the
  study's conclusions survive ±25 % perturbation of these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CACHE_LINE_BYTES",
    "L1D_BYTES",
    "L2_BYTES",
    "CACHE_ASSOC",
    "CORE_FREQS_MHZ",
    "MESH_FREQS_MHZ",
    "MEM_FREQS_MHZ",
    "DEFAULT_CORE_MHZ",
    "DEFAULT_MESH_MHZ",
    "DEFAULT_MEM_MHZ",
    "LAT_CORE_CYCLES",
    "LAT_MESH_CYCLES_PER_HOP",
    "LAT_MEM_CYCLES",
    "MC_BANDWIDTH_BYTES_PER_SEC_AT_800",
    "P54CTimingParams",
    "DEFAULT_TIMING",
]

# --- cache geometry (SCC EAS; paper Sec. II) -------------------------------
CACHE_LINE_BYTES = 32          # P54C line size
L1D_BYTES = 16 * 1024          # per-core L1 data cache
L2_BYTES = 256 * 1024          # per-core unified L2, write-back
CACHE_ASSOC = 4                # 4-way, pseudo-LRU

# --- frequency menus (paper Sec. II) ---------------------------------------
# Tiles: 100..800 MHz per tile.  Mesh: 800 MHz or 1.6 GHz, fixed at boot.
# Memory controllers: 800 or 1066 MHz, fixed at boot.  (The OCR capture
# prints "166"; the SCC DDR3 menu is 800/1066 MHz.)
CORE_FREQS_MHZ = (100, 200, 267, 320, 400, 533, 800)
MESH_FREQS_MHZ = (800, 1600)
MEM_FREQS_MHZ = (800, 1066)

DEFAULT_CORE_MHZ = 533
DEFAULT_MESH_MHZ = 800
DEFAULT_MEM_MHZ = 800

# --- memory read latency formula (paper Eq. 1, via SCC EAS) ----------------
# t = 40*C_core + 4*(2n)*C_mesh + 46*C_mem
# where C_x is the cycle time of the respective clock domain and n the
# number of mesh hops between the core's tile and its memory controller.
LAT_CORE_CYCLES = 40
LAT_MESH_CYCLES_PER_HOP = 8     # 4 cycles per router crossing, 2 crossings/hop
LAT_MEM_CYCLES = 46

# --- memory-controller bandwidth -------------------------------------------
# Sustained read bandwidth per MC at the default 800 MHz memory clock.
# Melot et al. report per-MC sustained read bandwidths in the
# 0.9-1.4 GB/s range depending on access pattern; irregular/streaming
# mixes sit at the low end.  Calibrated within that band so that the
# 48-core memory-bound suite lands in the paper's 400-500 MFLOPS/s band.
MC_BANDWIDTH_BYTES_PER_SEC_AT_800 = 0.95e9


@dataclass(frozen=True)
class P54CTimingParams:
    """Per-element CSR SpMV costs on the in-order P54C core.

    The CSR inner loop performs, per nonzero: one FP multiply-add (two
    FLOPs, not fused on P54C), loads of ``da[j]``, ``index[j]`` and the
    gather ``x[index[j]]``, plus loop bookkeeping.  The P54C is a
    two-issue in-order core with blocking caches, so:

    ``cycles(nnz element) = base_cycles_per_nnz
                            + (L1 misses that hit L2) * l2_hit_cycles``

    and every L2 miss stalls for the full Eq. 1 latency (no overlap).
    """

    #: issue/ALU/FPU cycles per nonzero assuming all-L1 hits.
    base_cycles_per_nnz: float = 16.0
    #: additional per-row cost: loop setup, ptr load, y store (cycles).
    row_overhead_cycles: float = 14.0
    #: L2 hit service time observed by the core (cycles at core clock).
    l2_hit_cycles: float = 20.0
    #: L1 hit cost is folded into base_cycles_per_nnz (pipelined).
    #: one-time per-call cost (cycles): function prologue, cold TLB.
    call_overhead_cycles: float = 2000.0

    def __post_init__(self) -> None:
        for field_name in (
            "base_cycles_per_nnz",
            "row_overhead_cycles",
            "l2_hit_cycles",
            "call_overhead_cycles",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


DEFAULT_TIMING = P54CTimingParams()
