"""2D mesh network model with deterministic XY routing.

The SCC mesh routes packets first along x, then along y (paper Sec. II).
This module provides route enumeration, per-link load accounting (used
to reason about congestion in the mapping study) and message timing for
the RCCE layer: a message of ``size`` bytes over ``h`` hops costs

``t = h * hop_cycles / f_mesh + size / link_bandwidth(f_mesh)``

with the 4-cycle router crossing from the SCC EAS.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .topology import GRID_X, GRID_Y, SCCTopology

__all__ = ["xy_route", "Link", "MeshNetwork"]

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]

#: router pipeline depth per crossing (SCC EAS: 4 mesh cycles).
ROUTER_CYCLES = 4
#: mesh link width: 16 bytes per mesh cycle (128-bit links).
LINK_BYTES_PER_CYCLE = 16


def xy_route(src: Coord, dst: Coord) -> List[Coord]:
    """Return the XY route from ``src`` to ``dst``, inclusive of both.

    X is routed to completion before Y, matching the chip's static
    dimension-ordered scheme.
    """
    for coord in (src, dst):
        x, y = coord
        if not (0 <= x < GRID_X and 0 <= y < GRID_Y):
            raise ValueError(f"coordinate {coord} outside {GRID_X}x{GRID_Y} mesh")
    path = [src]
    x, y = src
    step_x = 1 if dst[0] > x else -1
    while x != dst[0]:
        x += step_x
        path.append((x, y))
    step_y = 1 if dst[1] > y else -1
    while y != dst[1]:
        y += step_y
        path.append((x, y))
    return path


class MeshNetwork:
    """Link-load accounting and message timing over the SCC mesh."""

    def __init__(
        self,
        topology: SCCTopology | None = None,
        mesh_mhz: float = 800.0,
        tracer: Optional[Any] = None,
    ) -> None:
        if mesh_mhz <= 0:
            raise ValueError(f"mesh_mhz must be positive, got {mesh_mhz}")
        self.topology = topology or SCCTopology()
        self.mesh_mhz = mesh_mhz
        self._link_loads: Counter[Link] = Counter()
        #: per-link serialization slowdown factor (>= 1.0) for degraded
        #: links — the fault model's flaky-mesh knob.
        self._degraded: Dict[Link, float] = {}
        #: optional :class:`repro.obs.Tracer`: transfers additionally
        #: feed per-link byte/flit counters in its metrics registry.
        self.tracer = tracer

    @property
    def cycle_time(self) -> float:
        """Seconds per mesh cycle."""
        return 1.0 / (self.mesh_mhz * 1e6)

    @property
    def link_bandwidth(self) -> float:
        """Bytes/second over one mesh link."""
        return LINK_BYTES_PER_CYCLE * self.mesh_mhz * 1e6

    # -- routing / loads ---------------------------------------------------

    @staticmethod
    def links_of(path: List[Coord]) -> List[Link]:
        """Directed (a, b) link pairs along a route."""
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def record_transfer(self, src: Coord, dst: Coord, size_bytes: int = 1) -> List[Link]:
        """Account ``size_bytes`` on every link of the XY route."""
        links = self.links_of(xy_route(src, dst))
        for link in links:
            self._link_loads[link] += size_bytes
        tr = self.tracer
        if tr:
            # One flit = one link-width beat (16 bytes); a 0-byte control
            # message still occupies the route for its header flit.
            flits = max(1, -(-size_bytes // LINK_BYTES_PER_CYCLE))
            for (ax, ay), (bx, by) in links:
                label = f"{ax},{ay}->{bx},{by}"
                tr.metrics.counter("mesh.link_bytes", link=label).inc(size_bytes)
                tr.metrics.counter("mesh.link_flits", link=label).inc(flits)
        return links

    def link_loads(self) -> Dict[Link, int]:
        """Accumulated bytes per directed link."""
        return dict(self._link_loads)

    def max_link_load(self) -> int:
        """Heaviest accumulated link load (0 when idle)."""
        return max(self._link_loads.values(), default=0)

    def reset_loads(self) -> None:
        """Clear all link-load accounting."""
        self._link_loads.clear()

    # -- degradation (fault model) -----------------------------------------

    def set_link_degradation(
        self, a: Coord, b: Coord, factor: float, symmetric: bool = True
    ) -> None:
        """Mark the (a, b) link as degraded: serialization slows by ``factor``.

        A degraded link models an SCC mesh link running with retries /
        reduced effective width.  ``factor`` must be >= 1.0; routes that
        avoid the link are unaffected.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {factor}")
        for coord in (a, b):
            x, y = coord
            if not (0 <= x < GRID_X and 0 <= y < GRID_Y):
                raise ValueError(f"coordinate {coord} outside {GRID_X}x{GRID_Y} mesh")
        self._degraded[(tuple(a), tuple(b))] = factor
        if symmetric:
            self._degraded[(tuple(b), tuple(a))] = factor

    def clear_link_degradations(self) -> None:
        """Restore every link to full bandwidth."""
        self._degraded.clear()

    def route_slowdown(self, src: Coord, dst: Coord) -> float:
        """Worst degradation factor along the XY route (1.0 = healthy)."""
        if not self._degraded:
            return 1.0
        worst = 1.0
        for link in self.links_of(xy_route(src, dst)):
            worst = max(worst, self._degraded.get(link, 1.0))
        return worst

    # -- timing --------------------------------------------------------------

    def message_time(self, src: Coord, dst: Coord, size_bytes: int) -> float:
        """Latency of a ``size_bytes`` message from src to dst (seconds).

        Store-and-forward pipeline: per-hop router latency plus
        serialization of the payload on the narrowest (only) link class.
        Local transfers (src == dst) still pay one router crossing: the
        MPB sits behind the tile's router.
        """
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        hops = max(1, self.topology.hops_between(src, dst))
        header = hops * ROUTER_CYCLES * self.cycle_time
        serialize = size_bytes / self.link_bandwidth * self.route_slowdown(src, dst)
        return header + serialize

    def core_message_time(self, src_core: int, dst_core: int, size_bytes: int) -> float:
        """message_time between two cores' tiles."""
        ts = self.topology.tile_of_core(src_core)
        td = self.topology.tile_of_core(dst_core)
        return self.message_time((ts.x, ts.y), (td.x, td.y), size_bytes)

    def routes_through(self, coord: Coord, pairs: Iterable[Tuple[Coord, Coord]]) -> int:
        """How many of the given (src, dst) routes traverse ``coord``."""
        count = 0
        for src, dst in pairs:
            if coord in xy_route(src, dst):
                count += 1
        return count
