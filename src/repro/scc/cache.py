"""Exact set-associative cache simulator (tree pseudo-LRU, write-back).

Models the P54C per-core caches of the SCC: 4-way set-associative with a
pseudo-LRU replacement tree, write-back with write-allocate, 32-byte
lines, and *no* inter-core coherence (each core's hierarchy is private,
exactly as on the chip).

This simulator is the ground truth the vectorized locality model
(:mod:`repro.scc.locality`) is validated against.  It processes one
address per call (or a NumPy batch via :meth:`Cache.access_trace`), so
use it for traces up to a few million accesses; the benchmarks use the
O(N)-vectorized model instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .params import CACHE_ASSOC, CACHE_LINE_BYTES, L1D_BYTES, L2_BYTES

__all__ = ["CacheStats", "Cache", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """misses / accesses (0.0 on an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = self.writebacks = 0

    def publish(self, registry, level: str, **labels) -> None:
        """Export these counters into a :class:`repro.obs.MetricsRegistry`.

        Metric names are ``cache.<field>`` with a ``level`` label (plus
        any caller labels, typically ``core=``); publishing twice adds,
        so publish once per finished replay.
        """
        for field_name, value in (
            ("hits", self.hits),
            ("misses", self.misses),
            ("evictions", self.evictions),
            ("writebacks", self.writebacks),
        ):
            registry.counter(f"cache.{field_name}", level=level, **labels).inc(value)


class _PLRUTree:
    """Tree pseudo-LRU state for one set of a power-of-two-way cache.

    For a 4-way set the tree has 3 bits: bit 0 selects the half, bits
    1-2 select within each half.  ``touch`` points the tree away from
    the accessed way; ``victim`` follows the tree to the pseudo-LRU way.
    """

    __slots__ = ("ways", "levels", "bits")

    def __init__(self, ways: int) -> None:
        if ways & (ways - 1):
            raise ValueError(f"pseudo-LRU requires power-of-two ways, got {ways}")
        self.ways = ways
        self.levels = ways.bit_length() - 1
        self.bits = 0  # packed tree bits, node 1-indexed as in a heap

    def touch(self, way: int) -> None:
        """Point the PLRU tree away from the accessed way."""
        node = 1
        for level in range(self.levels):
            bit = (way >> (self.levels - 1 - level)) & 1
            # Point the node *away* from the touched child.
            if bit:
                self.bits &= ~(1 << node)
            else:
                self.bits |= 1 << node
            node = 2 * node + bit

    def victim(self) -> int:
        """Way the pseudo-LRU tree currently designates for eviction."""
        node = 1
        way = 0
        for _level in range(self.levels):
            bit = (self.bits >> node) & 1
            way = (way << 1) | bit
            node = 2 * node + bit
        return way


class Cache:
    """One level of set-associative cache."""

    def __init__(
        self,
        size_bytes: int = L2_BYTES,
        assoc: int = CACHE_ASSOC,
        line_bytes: int = CACHE_LINE_BYTES,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*line "
                f"({assoc}*{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.name = name
        self.n_sets = size_bytes // (assoc * line_bytes)
        # tags[set][way] = line address or -1; dirty flags alongside.
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._dirty = np.zeros((self.n_sets, assoc), dtype=bool)
        self._plru = [_PLRUTree(assoc) for _ in range(self.n_sets)]
        self.stats = CacheStats()

    @property
    def n_lines(self) -> int:
        """Total line capacity (sets * ways)."""
        return self.n_sets * self.assoc

    def line_of(self, addr: int) -> int:
        """Cache-line id of a byte address."""
        return addr // self.line_bytes

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address.  Returns True on hit.

        On miss the line is allocated (write-allocate); a dirty eviction
        increments ``stats.writebacks``.
        """
        line = addr // self.line_bytes
        return self.access_line(line, write)

    def access_line(self, line: int, write: bool = False) -> bool:
        """Access one line id; returns True on hit (allocates on miss)."""
        set_idx = line % self.n_sets
        tags = self._tags[set_idx]
        tree = self._plru[set_idx]
        for way in range(self.assoc):
            if tags[way] == line:
                self.stats.hits += 1
                tree.touch(way)
                if write:
                    self._dirty[set_idx, way] = True
                return True
        # Miss: prefer an invalid way, else the pseudo-LRU victim.
        self.stats.misses += 1
        way = -1
        for w in range(self.assoc):
            if tags[w] == -1:
                way = w
                break
        if way == -1:
            way = tree.victim()
            self.stats.evictions += 1
            if self._dirty[set_idx, way]:
                self.stats.writebacks += 1
        tags[way] = line
        self._dirty[set_idx, way] = write
        tree.touch(way)
        return False

    def access_trace(self, addrs: np.ndarray, writes: Optional[np.ndarray] = None) -> int:
        """Process a trace of byte addresses; returns the miss count added."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if writes is None:
            writes_arr = np.zeros(addrs.shape, dtype=bool)
        else:
            writes_arr = np.asarray(writes, dtype=bool)
            if writes_arr.shape != addrs.shape:
                raise ValueError("writes must match addrs shape")
        before = self.stats.misses
        lines = addrs // self.line_bytes
        for line, w in zip(lines.tolist(), writes_arr.tolist()):
            self.access_line(line, w)
        return self.stats.misses - before

    def contains_line(self, line: int) -> bool:
        """True if the line is currently resident."""
        set_idx = line % self.n_sets
        return bool((self._tags[set_idx] == line).any())

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines written back."""
        dirty = int(self._dirty.sum())
        self.stats.writebacks += dirty
        self._tags.fill(-1)
        self._dirty.fill(False)
        for tree in self._plru:
            tree.bits = 0
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name} {self.size_bytes // 1024}KB {self.assoc}-way "
            f"{self.n_sets} sets>"
        )


class CacheHierarchy:
    """Private two-level hierarchy of one SCC core (L1D + L2).

    ``l2_enabled=False`` models the paper's Fig. 7 experiment where the
    cores are booted with L2 disabled: L1 misses then go straight to
    memory.  Inclusive bookkeeping is not enforced (the P54C pair is
    non-inclusive); each level filters the next.
    """

    def __init__(
        self,
        l1_bytes: int = L1D_BYTES,
        l2_bytes: int = L2_BYTES,
        assoc: int = CACHE_ASSOC,
        line_bytes: int = CACHE_LINE_BYTES,
        l2_enabled: bool = True,
    ) -> None:
        self.l1 = Cache(l1_bytes, assoc, line_bytes, name="L1D")
        self.l2_enabled = l2_enabled
        self.l2 = Cache(l2_bytes, assoc, line_bytes, name="L2") if l2_enabled else None

    def access(self, addr: int, write: bool = False) -> str:
        """Access one byte address; returns 'l1', 'l2' or 'mem'."""
        if self.l1.access(addr, write):
            return "l1"
        if self.l2 is not None and self.l2.access(addr, write):
            return "l2"
        return "mem"

    def access_trace(self, addrs: np.ndarray, writes: Optional[np.ndarray] = None) -> dict:
        """Process a trace; returns {'l1': hits, 'l2': hits, 'mem': misses}."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if writes is None:
            writes = np.zeros(addrs.shape, dtype=bool)
        else:
            writes = np.asarray(writes, dtype=bool)
            if writes.shape != addrs.shape:
                raise ValueError("writes must match addrs shape")
        counts = {"l1": 0, "l2": 0, "mem": 0}
        for a, w in zip(addrs.tolist(), writes.tolist()):
            counts[self.access(int(a), bool(w))] += 1
        return counts

    def flush(self) -> None:
        """Invalidate both levels (write-back counts accrue in stats)."""
        self.l1.flush()
        if self.l2 is not None:
            self.l2.flush()

    def publish_metrics(self, tracer, core: int = 0) -> None:
        """Export per-level hit/miss counters to a tracer's registry.

        The observability layer's view of this private hierarchy:
        ``cache.{hits,misses,evictions,writebacks}{level=L1D|L2,core=n}``.
        """
        if not tracer:
            return
        self.l1.stats.publish(tracer.metrics, "L1D", core=core)
        if self.l2 is not None:
            self.l2.stats.publish(tracer.metrics, "L2", core=core)
