"""Event-driven memory-controller queue — validation of the closed form.

The timing solver (:mod:`repro.core.timing`) computes each controller's
effective per-line service time from a closed-form bandwidth-sharing
equilibrium.  This module checks that shortcut against an *actual*
discrete-event simulation: cores issue line requests separated by their
compute gaps; a FIFO server drains one line per ``1/capacity`` seconds;
a request completes no earlier than its Eq. 1 latency.

:func:`simulate_controller` returns per-core completion times that
``benchmarks/test_ablation_mcqueue.py`` and the unit tests compare with
:func:`repro.core.timing.solve_core_times`'s predictions — agreement
within a few percent across unsaturated, saturated and asymmetric
workloads is what licenses using the closed form everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..sim import Process, Resource, Simulator

__all__ = ["CoreWorkload", "StallBurst", "simulate_controller"]


@dataclass(frozen=True)
class StallBurst:
    """A window during which the controller serves lines ``factor``x slower.

    Models transient DDR3/controller stalls (refresh storms, thermal
    throttling) the fault plans inject: every line whose service starts
    inside [start, end) pays ``factor`` times the normal service time.
    """

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"burst window [{self.start}, {self.end}) is invalid")
        if self.factor < 1.0:
            raise ValueError(f"burst factor must be >= 1.0, got {self.factor}")

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class CoreWorkload:
    """One core's demand on the controller."""

    compute_time: float   #: total non-memory seconds (the A_c term)
    n_lines: int          #: memory line fetches issued
    latency: float        #: uncontended Eq. 1 round trip for this core

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.n_lines < 0 or self.latency <= 0:
            raise ValueError("workload terms must be non-negative (latency positive)")


def _burst_factor(bursts: Optional[Sequence[StallBurst]], t: float) -> float:
    if not bursts:
        return 1.0
    worst = 1.0
    for b in bursts:
        if b.active_at(t):
            worst = max(worst, b.factor)
    return worst


def _core_process(
    sim: Simulator,
    mc: Resource,
    wl: CoreWorkload,
    service: float,
    out: List[float],
    idx: int,
    bursts: Optional[Sequence[StallBurst]] = None,
    tracer: Optional[Any] = None,
):
    gap = wl.compute_time / wl.n_lines if wl.n_lines else 0.0
    for _ in range(wl.n_lines):
        yield sim.timeout(gap)
        arrival = sim.now
        if tracer:
            tracer.counter("mc.queue_depth", mc.queue_length, tid=idx)
        yield mc.request()
        if tracer:
            # Queueing delay in front of the controller: >0 only when
            # the FIFO was busy on arrival (the MC-saturation signal).
            tracer.metrics.histogram("mc.wait_s", core=idx).observe(sim.now - arrival)
        factor = _burst_factor(bursts, sim.now)
        if tracer and factor > 1.0:
            tracer.instant("mc.stall_burst", tid=idx, cat="mc", factor=factor)
            tracer.metrics.counter("mc.stalled_lines", core=idx).inc()
        yield sim.timeout(service * factor)
        mc.release()
        # The DDR round trip is a latency floor: even an idle controller
        # cannot answer faster than Eq. 1.
        remaining = arrival + wl.latency - sim.now
        if remaining > 0:
            yield sim.timeout(remaining)
    out[idx] = sim.now


def simulate_controller(
    workloads: Sequence[CoreWorkload],
    capacity_lines_per_sec: float,
    line_pipeline_fraction: float = 1.0,
    stall_bursts: Optional[Sequence[StallBurst]] = None,
    tracer: Optional[Any] = None,
) -> List[float]:
    """Per-core completion times under FIFO service.

    ``line_pipeline_fraction`` scales the serialized portion of the
    service (1.0 = fully serialized server, the conservative model the
    closed form also assumes).  ``stall_bursts`` injects windows of
    degraded service (see :class:`StallBurst`) — fault plans use this to
    model flaky memory controllers; the default is a healthy controller.
    ``tracer`` (a :class:`repro.obs.Tracer`) additionally records queue
    depth samples plus wait-time and stall histograms per core.
    """
    if capacity_lines_per_sec <= 0:
        raise ValueError("capacity must be positive")
    if not 0.0 < line_pipeline_fraction <= 1.0:
        raise ValueError("line_pipeline_fraction must be in (0, 1]")
    if not workloads:
        raise ValueError("need at least one workload")
    bursts: Optional[Tuple[StallBurst, ...]] = tuple(stall_bursts) if stall_bursts else None
    sim = Simulator(tracer=tracer if tracer else None)
    if tracer:
        tracer.bind_clock(lambda: sim.now)
    mc = Resource(sim, capacity=1, name="mc")
    service = line_pipeline_fraction / capacity_lines_per_sec
    out = [0.0] * len(workloads)
    for i, wl in enumerate(workloads):
        Process(
            sim,
            _core_process(sim, mc, wl, service, out, i, bursts, tracer),
            name=f"core{i}",
        )
    sim.run()
    return out
