"""Event-driven network-on-chip with per-link contention.

The analytic :class:`~repro.scc.mesh.MeshNetwork` prices a message by
its route alone; concurrent messages never interact.  That is adequate
for SpMV (whose traffic is core→MC on dedicated links) but collective-
heavy programs can congest shared mesh links.  This module provides the
event-driven counterpart: every directed link between adjacent routers
is a capacity-1 server; messages progress store-and-forward, holding
one link at a time for (router crossing + serialization), so two
messages crossing the same link serialize while disjoint routes
proceed in parallel.

Holding a single link at a time (store-and-forward) keeps the model
trivially deadlock-free; an uncontended h-hop transfer of B bytes costs

    t = h * (ROUTER_CYCLES/f_mesh + B/link_bw)

— per-hop serialization, vs the analytic model's cut-through
``h*router + B/bw``.  The tests pin both formulas and the contention
behaviour.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..sim import Process, Resource, Simulator
from .mesh import LINK_BYTES_PER_CYCLE, ROUTER_CYCLES, xy_route
from .topology import SCCTopology

__all__ = ["EventDrivenMesh", "TransferSpec", "simulate_transfers"]

Coord = Tuple[int, int]
TransferSpec = Tuple[float, Coord, Coord, int]  # (start, src, dst, bytes)


class EventDrivenMesh:
    """Per-link contention model over the 6x4 SCC mesh."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[SCCTopology] = None,
        mesh_mhz: float = 800.0,
    ) -> None:
        if mesh_mhz <= 0:
            raise ValueError(f"mesh_mhz must be positive, got {mesh_mhz}")
        self.sim = sim
        self.topology = topology or SCCTopology()
        self.mesh_mhz = mesh_mhz
        self._links: Dict[Tuple[Coord, Coord], Resource] = {}

    @property
    def cycle_time(self) -> float:
        """Seconds per mesh cycle."""
        return 1.0 / (self.mesh_mhz * 1e6)

    @property
    def link_bandwidth(self) -> float:
        """Bytes/second over one link."""
        return LINK_BYTES_PER_CYCLE * self.mesh_mhz * 1e6

    def _link(self, a: Coord, b: Coord) -> Resource:
        key = (a, b)
        if key not in self._links:
            self._links[key] = Resource(self.sim, capacity=1, name=f"link{a}->{b}")
        return self._links[key]

    def uncontended_time(self, src: Coord, dst: Coord, nbytes: int) -> float:
        """Store-and-forward floor: h * (router + serialization).

        Local delivery (src == dst) never leaves the tile: it crosses
        the router once and serializes nothing.
        """
        hops = len(xy_route(src, dst)) - 1
        if hops == 0:
            return ROUTER_CYCLES * self.cycle_time
        return hops * (ROUTER_CYCLES * self.cycle_time + nbytes / self.link_bandwidth)

    def transfer(self, src: Coord, dst: Coord, nbytes: int) -> Generator:
        """Move ``nbytes`` from src to dst; yields until delivery.

        One link is held at a time (store-and-forward), so concurrent
        transfers are trivially deadlock-free and contend per link.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        path = xy_route(src, dst)
        hop_cost = ROUTER_CYCLES * self.cycle_time + nbytes / self.link_bandwidth
        if len(path) == 1:
            # Local delivery still crosses the tile's router once.
            yield self.sim.timeout(ROUTER_CYCLES * self.cycle_time)
            return
        for a, b in zip(path, path[1:]):
            link = self._link(a, b)
            yield link.request()
            yield self.sim.timeout(hop_cost)
            link.release()

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[Coord, Coord], float]]:
        """Links ranked by accumulated busy time (diagnostics)."""
        ranked = sorted(
            ((key, res.busy_time()) for key, res in self._links.items()),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return ranked[:top]


def simulate_transfers(
    transfers: Sequence[TransferSpec],
    mesh_mhz: float = 800.0,
    topology: Optional[SCCTopology] = None,
) -> List[float]:
    """Completion time of each (start, src, dst, bytes) transfer.

    Convenience harness: spawns one process per transfer on a fresh
    simulator and returns per-transfer completion times in input order.
    """
    if not transfers:
        raise ValueError("need at least one transfer")
    sim = Simulator()
    mesh = EventDrivenMesh(sim, topology, mesh_mhz)
    done = [0.0] * len(transfers)

    def runner(i: int, spec: TransferSpec):
        """Process body: wait for the start time, then transfer."""
        start, src, dst, nbytes = spec
        if start < 0:
            raise ValueError(f"transfer {i}: start must be >= 0")
        yield sim.timeout(start)
        yield from mesh.transfer(src, dst, nbytes)
        done[i] = sim.now

    for i, spec in enumerate(transfers):
        Process(sim, runner(i, spec), name=f"xfer{i}")
    sim.run()
    return done
