"""Architecture model of the Intel Single-chip Cloud Computer (SCC).

Subpackages model the pieces of the chip the paper's study exercises:

- :mod:`~repro.scc.topology` — 6x4 tile mesh, core numbering, memory
  controllers, hop distances.
- :mod:`~repro.scc.mesh` — XY routing, link loads, message timing.
- :mod:`~repro.scc.cache` — exact 4-way pseudo-LRU write-back caches.
- :mod:`~repro.scc.vecreplay` — set-parallel vectorized exact replay,
  bitwise-identical to :mod:`~repro.scc.cache` at full Table-I scale.
- :mod:`~repro.scc.locality` — vectorized reuse/footprint/miss models.
- :mod:`~repro.scc.memory` — Eq. 1 latency and controller bandwidth.
- :mod:`~repro.scc.core_model` — P54C in-order timing composition.
- :mod:`~repro.scc.power` / :mod:`~repro.scc.chip` — frequency menus,
  configuration presets (conf0/1/2) and the calibrated power model.
"""

from .chip import CONF0, CONF1, CONF2, PRESETS, SCCConfig
from .cache import Cache, CacheHierarchy, CacheStats
from .core_model import AccessSummary, core_flops, core_time
from .locality import (
    FootprintCurve,
    MissRatioCurve,
    ReuseProfile,
    footprint_curve,
    lines_of_addresses,
    miss_ratio_curve,
    reuse_profile,
    reuse_times,
)
from .mcqueue import CoreWorkload, simulate_controller
from .memory import MemoryController, MemorySystem, memory_read_latency
from .mesh import MeshNetwork, xy_route
from .noc import EventDrivenMesh, simulate_transfers
from .params import (
    CACHE_ASSOC,
    CACHE_LINE_BYTES,
    CORE_FREQS_MHZ,
    DEFAULT_TIMING,
    L1D_BYTES,
    L2_BYTES,
    MEM_FREQS_MHZ,
    MESH_FREQS_MHZ,
    P54CTimingParams,
)
from .power import chip_power, core_voltage, mesh_voltage
from .tracegen import (
    CHUNK_ACCESSES,
    DEFAULT_LAYOUT,
    REPLAY_ENGINES,
    TraceCounts,
    TraceLayout,
    replay_trace,
    spmv_address_trace,
    spmv_address_trace_chunks,
)
from .vecreplay import TraceSchedule, VectorCache, VectorCacheHierarchy, compile_schedule
from .topology import CORES_PER_TILE, GRID_X, GRID_Y, N_CORES, N_TILES, SCCTopology, Tile

__all__ = [
    "CONF0",
    "CONF1",
    "CONF2",
    "PRESETS",
    "SCCConfig",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "AccessSummary",
    "core_flops",
    "core_time",
    "FootprintCurve",
    "MissRatioCurve",
    "ReuseProfile",
    "footprint_curve",
    "lines_of_addresses",
    "miss_ratio_curve",
    "reuse_profile",
    "reuse_times",
    "CoreWorkload",
    "simulate_controller",
    "MemoryController",
    "MemorySystem",
    "memory_read_latency",
    "MeshNetwork",
    "xy_route",
    "EventDrivenMesh",
    "simulate_transfers",
    "CACHE_ASSOC",
    "CACHE_LINE_BYTES",
    "CORE_FREQS_MHZ",
    "DEFAULT_TIMING",
    "L1D_BYTES",
    "L2_BYTES",
    "MEM_FREQS_MHZ",
    "MESH_FREQS_MHZ",
    "P54CTimingParams",
    "chip_power",
    "core_voltage",
    "mesh_voltage",
    "CORES_PER_TILE",
    "GRID_X",
    "GRID_Y",
    "N_CORES",
    "N_TILES",
    "SCCTopology",
    "Tile",
    "CHUNK_ACCESSES",
    "DEFAULT_LAYOUT",
    "REPLAY_ENGINES",
    "TraceCounts",
    "TraceLayout",
    "replay_trace",
    "spmv_address_trace",
    "spmv_address_trace_chunks",
    "TraceSchedule",
    "VectorCache",
    "VectorCacheHierarchy",
    "compile_schedule",
]
