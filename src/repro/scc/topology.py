"""SCC chip topology: tiles, cores, memory controllers, hop distances.

The SCC arranges 48 P54C cores as 24 dual-core tiles on a 6 (x) by
4 (y) mesh.  Four DDR3 memory controllers hang off the routers of the
edge tiles at (x, y) = (0, 0), (5, 0), (0, 2) and (5, 2).  The chip is
partitioned into quadrants of 3x2 tiles (12 cores); all private-memory
traffic of a quadrant goes through its quadrant's controller.

Core numbering follows the chip: tile ``t`` (row-major, ``t = y*6 + x``)
holds cores ``2t`` and ``2t+1``.  The paper's example — "the lower left
quadrant contains cores 0-5 and 12-17" — is reproduced by
:meth:`SCCTopology.cores_of_quadrant`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

__all__ = ["GRID_X", "GRID_Y", "N_TILES", "CORES_PER_TILE", "N_CORES", "Tile", "SCCTopology"]

GRID_X = 6
GRID_Y = 4
N_TILES = GRID_X * GRID_Y
CORES_PER_TILE = 2
N_CORES = N_TILES * CORES_PER_TILE

# Memory-controller router coordinates, one per quadrant.
_MC_COORDS: Tuple[Tuple[int, int], ...] = ((0, 0), (5, 0), (0, 2), (5, 2))


@dataclass(frozen=True)
class Tile:
    """One dual-core tile at mesh coordinate (x, y)."""

    tile_id: int
    x: int
    y: int

    @property
    def cores(self) -> Tuple[int, int]:
        """The tile's two core ids (2t, 2t+1)."""
        return (2 * self.tile_id, 2 * self.tile_id + 1)


class SCCTopology:
    """Immutable description of the 48-core chip layout.

    All coordinate/percentile queries are O(1); the object is cheap and
    stateless, so a module-level singleton is fine (``SCCTopology()``
    instances are interchangeable).
    """

    def __init__(self) -> None:
        self._tiles: List[Tile] = [
            Tile(tile_id=y * GRID_X + x, x=x, y=y)
            for y in range(GRID_Y)
            for x in range(GRID_X)
        ]
        self._mc_coords = _MC_COORDS

    # -- basic lookups -------------------------------------------------

    @property
    def tiles(self) -> Tuple[Tile, ...]:
        """All 24 tiles in row-major order."""
        return tuple(self._tiles)

    @property
    def n_cores(self) -> int:
        """Total cores on the chip (48)."""
        return N_CORES

    @property
    def mc_coords(self) -> Tuple[Tuple[int, int], ...]:
        """Router coordinates of the four memory controllers."""
        return self._mc_coords

    def tile(self, tile_id: int) -> Tile:
        """Tile by id (row-major)."""
        if not 0 <= tile_id < N_TILES:
            raise ValueError(f"tile_id {tile_id} out of range [0, {N_TILES})")
        return self._tiles[tile_id]

    def tile_at(self, x: int, y: int) -> Tile:
        """Tile at mesh coordinate (x, y)."""
        if not (0 <= x < GRID_X and 0 <= y < GRID_Y):
            raise ValueError(f"coordinate ({x}, {y}) outside {GRID_X}x{GRID_Y} mesh")
        return self._tiles[y * GRID_X + x]

    def tile_of_core(self, core: int) -> Tile:
        """The tile hosting a core."""
        if not 0 <= core < N_CORES:
            raise ValueError(f"core {core} out of range [0, {N_CORES})")
        return self._tiles[core // CORES_PER_TILE]

    # -- quadrants and memory controllers --------------------------------

    def quadrant_of_tile(self, tile: Tile) -> int:
        """Quadrant index 0..3 matching the MC order in ``mc_coords``."""
        qx = 0 if tile.x < GRID_X // 2 else 1
        qy = 0 if tile.y < GRID_Y // 2 else 1
        return qy * 2 + qx

    def quadrant_of_core(self, core: int) -> int:
        """Quadrant index (0..3) of a core's tile."""
        return self.quadrant_of_tile(self.tile_of_core(core))

    def mc_coord_of_core(self, core: int) -> Tuple[int, int]:
        """Router coordinate of the MC serving this core's private memory."""
        return self._mc_coords[self.quadrant_of_core(core)]

    def mc_index_of_core(self, core: int) -> int:
        """Index of the MC serving this core (== quadrant)."""
        return self.quadrant_of_core(core)

    def cores_of_quadrant(self, quadrant: int) -> Tuple[int, ...]:
        """The 12 cores whose private memory lives behind one MC."""
        if not 0 <= quadrant < 4:
            raise ValueError(f"quadrant {quadrant} out of range [0, 4)")
        return tuple(
            c
            for t in self._tiles
            if self.quadrant_of_tile(t) == quadrant
            for c in t.cores
        )

    # -- distances -------------------------------------------------------

    def hops_between(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """Mesh hop count under XY routing (Manhattan distance)."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def hops_to_mc(self, core: int) -> int:
        """Hops from a core's tile router to its private-memory MC."""
        t = self.tile_of_core(core)
        return self.hops_between((t.x, t.y), self.mc_coord_of_core(core))

    @lru_cache(maxsize=None)
    def cores_by_distance(self) -> Tuple[int, ...]:
        """All 48 cores ordered by (hops to their MC, core id).

        This is the order the paper's *distance reduction* mapping draws
        cores from: nearest-to-memory first.
        """
        return tuple(sorted(range(N_CORES), key=lambda c: (self.hops_to_mc(c), c)))

    def cores_at_distance(self, hops: int) -> Tuple[int, ...]:
        """Cores whose private-memory MC is exactly ``hops`` away."""
        return tuple(c for c in range(N_CORES) if self.hops_to_mc(c) == hops)

    def distance_histogram(self) -> Dict[int, int]:
        """Map hop-count -> number of cores at that distance."""
        hist: Dict[int, int] = {}
        for c in range(N_CORES):
            h = self.hops_to_mc(c)
            hist[h] = hist.get(h, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SCCTopology {GRID_X}x{GRID_Y} tiles, {N_CORES} cores, 4 MCs>"
