"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1 --scale 0.2
    python -m repro fig5 --scale 0.2 --ids 7,14,24
    python -m repro fig9 --iterations 8
    python -m repro all --scale 0.1
    python -m repro lint examples/ src/repro/apps/
    python -m repro check --program myprog.py:ue_main --ues 4
    python -m repro faults --plan crash --ids 2,7 --cores 8
    python -m repro faults --repair results/sweep.jsonl

Output is the same tabular rendering the benchmark harness prints; the
benchmark harness additionally asserts the paper's findings, so use
``pytest benchmarks/ --benchmark-only`` for a checked reproduction.
``lint`` and ``check`` are the correctness tooling of
:mod:`repro.analysis` (see ``docs/ANALYSIS.md``): a static SPMD/
determinism linter and the dynamic race/deadlock/determinism checkers.
``faults`` runs the fault-tolerant SpMV driver under a seeded fault
plan and repairs damaged campaign files (see ``docs/FAULTS.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.figures import (
    FIG3_HOPS,
    FIG5_CORE_COUNTS,
    FIG6_CORE_COUNTS,
    FIG7_CORE_COUNTS,
    FIG9_CORE_COUNTS,
    fig3_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    fig9_summary,
    fig10_data,
    suite_experiments,
    table1_data,
)
from .core.metrics import average_gflops
from .core.report import banner, format_series, format_table
from .scc.chip import CONF0, CONF1, CONF2

__all__ = ["main", "build_parser"]

ARTIFACTS = ("table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10")

#: subcommands handled by repro.analysis.cli rather than the artifact parser.
ANALYSIS_COMMANDS = ("lint", "check")
#: subcommands handled by repro.faults.cli.
FAULTS_COMMANDS = ("faults",)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the SCC SpMV paper on the model.",
    )
    p.add_argument(
        "artifact",
        choices=ARTIFACTS + ("all", "validate"),
        help="which paper artifact to regenerate ('validate' runs model self-checks)",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="matrix-size scale; 1.0 = published UFL sizes (default 0.25)",
    )
    p.add_argument(
        "--ids",
        type=str,
        default="",
        help="comma-separated Table I matrix ids to restrict the suite",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=16,
        help="SpMV repetitions per timed run (default 16)",
    )
    p.add_argument(
        "--output",
        type=str,
        default="",
        help="write the rendered artifact(s) to this file instead of stdout",
    )
    return p


def _parse_ids(raw: str) -> Optional[List[int]]:
    raw = raw.strip()
    if not raw:
        return None
    try:
        return [int(tok) for tok in raw.split(",")]
    except ValueError as exc:
        raise SystemExit(f"--ids must be comma-separated integers: {exc}") from exc


def _render(artifact: str, exps, iterations: int, out) -> None:
    if artifact == "table1":
        rows = table1_data(exps)
        print(banner("Table I: matrix benchmark suite"), file=out)
        print(
            format_table(
                rows,
                ["id", "name", "n", "nnz", "nnz_per_row", "ws_mbytes", "family"],
            ),
            file=out,
        )
    elif artifact == "fig3":
        data = fig3_data(exps, iterations)
        series = [data[h] for h in FIG3_HOPS]
        rel = [100 * (1 - v / series[0]) for v in series]
        print(banner("Fig. 3: single-core performance vs hops to MC"), file=out)
        print(
            format_series(
                "hops", FIG3_HOPS, {"avg MFLOPS/s": series, "degradation %": rel}
            ),
            file=out,
        )
    elif artifact == "fig5":
        std, dr = fig5_data(exps, iterations)
        print(banner("Fig. 5: standard vs distance-reduction mapping"), file=out)
        print(
            format_series(
                "cores",
                FIG5_CORE_COUNTS,
                {
                    "standard MFLOPS/s": std,
                    "dist-reduction MFLOPS/s": dr,
                    "speedup": [d / s for d, s in zip(dr, std)],
                },
            ),
            file=out,
        )
    elif artifact == "fig6":
        rows = fig6_data(exps, iterations)
        cols = ["id", "name"]
        for n in FIG6_CORE_COUNTS:
            cols += [f"wsKB/core@{n}", f"MFLOPS@{n}"]
        print(banner("Fig. 6: performance vs working set"), file=out)
        print(format_table(rows, cols, floatfmt=".1f"), file=out)
    elif artifact == "fig7":
        with_l2, without_l2 = fig7_data(exps, iterations)
        on = [average_gflops(with_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
        off = [average_gflops(without_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
        print(banner("Fig. 7: L2 caches disabled"), file=out)
        print(
            format_series(
                "cores",
                FIG7_CORE_COUNTS,
                {
                    "with L2 MFLOPS/s": on,
                    "without L2 MFLOPS/s": off,
                    "loss %": [100 * (1 - o / w) for o, w in zip(off, on)],
                },
                floatfmt=".1f",
            ),
            file=out,
        )
    elif artifact == "fig8":
        rows = fig8_data(exps, iterations)
        cols = ["id", "name"] + [f"speedup@{n}" for n in FIG6_CORE_COUNTS]
        print(banner("Fig. 8: no-x-miss kernel speedup"), file=out)
        print(format_table(rows, cols), file=out)
    elif artifact == "fig9":
        results = fig9_data(exps, iterations)
        perf, eff = fig9_summary(results)
        print(banner("Fig. 9(a): performance per configuration"), file=out)
        print(
            format_series(
                "cores",
                FIG9_CORE_COUNTS,
                {f"{name} MFLOPS/s": series for name, series in perf.items()},
                floatfmt=".1f",
            ),
            file=out,
        )
        print(banner("Fig. 9(b): full-system power efficiency"), file=out)
        print(
            format_table(
                [
                    {
                        "config": cfg.name,
                        "watts": cfg.full_chip_power(),
                        "MFLOPS/W": eff[cfg.name],
                    }
                    for cfg in (CONF0, CONF1, CONF2)
                ],
                ["config", "watts", "MFLOPS/W"],
            ),
            file=out,
        )
    elif artifact == "fig10":
        rows = sorted(fig10_data(exps, iterations), key=lambda r: r["gflops"])
        print(banner("Fig. 10: architectural comparison"), file=out)
        print(
            format_table(
                rows, ["system", "gflops", "watts", "mflops_per_watt", "source"]
            ),
            file=out,
        )
    else:  # pragma: no cover - parser restricts choices
        raise SystemExit(f"unknown artifact {artifact!r}")


def _render_validation(out) -> int:
    """Model self-checks: trace-exact replay, MC queue, kernel numerics.

    Returns the number of failed checks (0 = healthy).
    """
    import numpy as np

    from .core.timing import _controller_line_time
    from .core.trace import access_summary, characterize_partition
    from .scc.mcqueue import CoreWorkload, simulate_controller
    from .scc.tracegen import replay_trace
    from .sparse import banded, partition_rows_balanced, random_uniform, spmv

    failures = 0
    rows = []

    # 1. Analytical stream model vs trace-exact cache replay.
    for label, a in (
        ("banded", banded(2500, 10.0, 14, seed=1)),
        ("random", random_uniform(2500, 10.0, seed=2)),
    ):
        [trace] = characterize_partition(a, partition_rows_balanced(a, 1))
        model = access_summary(trace, iterations=1).l2_misses
        exact = replay_trace(a, iterations=1).mem_misses
        err = 100 * abs(model - exact) / max(exact, 1)
        ok = err < 30.0
        failures += not ok
        rows.append(
            {"check": f"trace-exact misses ({label})", "result": f"{err:.1f}% err",
             "status": "ok" if ok else "FAIL"}
        )

    # 2. Closed-form MC equilibrium vs event-driven FIFO queue.
    wl = CoreWorkload(compute_time=0.005, n_lines=20_000, latency=132.5e-9)
    capacity = 0.95e9 / 32
    event = max(simulate_controller([wl] * 12, capacity))
    t_star = _controller_line_time([wl.compute_time] * 12, [float(wl.n_lines)] * 12,
                                   [wl.latency] * 12, capacity)
    closed = wl.compute_time + wl.n_lines * max(t_star, wl.latency)
    err = 100 * abs(closed - event) / event
    ok = err < 10.0
    failures += not ok
    rows.append(
        {"check": "MC equilibrium vs queue", "result": f"{err:.1f}% err",
         "status": "ok" if ok else "FAIL"}
    )

    # 3. Kernel numerics vs SciPy.
    a = banded(1500, 8.0, 10, seed=3)
    x = np.random.default_rng(0).uniform(size=a.n_cols)
    ok = bool(np.allclose(spmv(a, x), a.to_scipy() @ x, rtol=1e-9))
    failures += not ok
    rows.append(
        {"check": "SpMV vs SciPy", "result": "allclose(1e-9)",
         "status": "ok" if ok else "FAIL"}
    )

    # 4. Power anchors.
    for cfg, target in ((CONF0, 83.3), (CONF1, 107.4)):
        got = cfg.full_chip_power()
        ok = abs(got - target) < 0.5
        failures += not ok
        rows.append(
            {"check": f"power anchor {cfg.name}", "result": f"{got:.1f} W",
             "status": "ok" if ok else "FAIL"}
        )

    print(banner("Model self-validation"), file=out)
    print(format_table(rows, ["check", "result", "status"]), file=out)
    print(f"\n{failures} failure(s)" if failures else "\nall checks passed", file=out)
    return failures


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] in ANALYSIS_COMMANDS:
        from .analysis.cli import check_main, lint_main

        handler = lint_main if argv[0] == "lint" else check_main
        return handler(argv[1:], out=out)
    if argv and argv[0] in FAULTS_COMMANDS:
        from .faults.cli import faults_main

        return faults_main(argv[1:], out=out)
    args = build_parser().parse_args(argv)
    opened = None
    if out is None:
        if args.output:
            opened = open(args.output, "w", encoding="utf-8")
            out = opened
        else:
            out = sys.stdout
    if not 0 < args.scale <= 1.0:
        raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
    if args.iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {args.iterations}")
    if args.artifact == "validate":
        try:
            return _render_validation(out)
        finally:
            if opened is not None:
                opened.close()
    exps = suite_experiments(scale=args.scale, ids=_parse_ids(args.ids))
    if not exps:
        raise SystemExit("no matrices selected; check --ids")
    artifacts = ARTIFACTS if args.artifact == "all" else (args.artifact,)
    try:
        for artifact in artifacts:
            _render(artifact, exps, args.iterations, out)
    finally:
        if opened is not None:
            opened.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
