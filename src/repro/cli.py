"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro run table1 --scale 0.2
    python -m repro run fig5 --scale 0.2 --ids 7,14,24
    python -m repro run all --scale 0.1
    python -m repro run --validate-exact --scale 0.25
    python -m repro lint examples/ src/repro/apps/
    python -m repro check --program myprog.py:ue_main --ues 4
    python -m repro analyze examples/ --ues-range 2:16 --format sarif
    python -m repro faults --plan crash --ids 2,7 --cores 8
    python -m repro faults --repair results/sweep.jsonl
    python -m repro chaos --seed 0 --workers 4
    python -m repro trace --cores 4 --export chrome --output trace.json
    python -m repro bench snapshot
    python -m repro serve --workers 4
    python -m repro submit --ids 7,24 --cores 1,4,16 --wait
    python -m repro status

Legacy invocations without the ``run`` subcommand (``python -m repro
fig5``) keep working: artifact names are aliased to ``run <artifact>``.

Output is the same tabular rendering the benchmark harness prints; the
benchmark harness additionally asserts the paper's findings, so use
``pytest benchmarks/ --benchmark-only`` for a checked reproduction.
``lint``, ``check`` and ``analyze`` are the correctness tooling of
:mod:`repro.analysis` (see ``docs/ANALYSIS.md``); ``faults`` runs the
fault-tolerant SpMV driver under a seeded fault plan (see
``docs/FAULTS.md``); ``trace`` and ``bench`` are the observability
layer (see ``docs/OBSERVABILITY.md``); ``serve``/``submit``/``status``/
``result`` are the campaign service (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .cliutil import add_output_flag, add_supervise_flags, open_output, policy_from_args
from .core.figures import (
    DEFAULT_MODE,
    FIG3_HOPS,
    FIG5_CORE_COUNTS,
    FIG6_CORE_COUNTS,
    FIG7_CORE_COUNTS,
    FIG9_CORE_COUNTS,
    fig3_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    fig9_summary,
    fig10_data,
    suite_experiments,
    table1_data,
)
from .core.metrics import average_gflops
from .core.report import banner, format_series, format_table
from .machine.base import DEFAULT_MACHINE
from .machine.registry import get_machine, list_machines
from .scc.chip import CONF0, CONF1

__all__ = ["main", "build_parser", "COMMANDS", "ARTIFACTS"]

ARTIFACTS = ("table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10")

#: every first-class subcommand of the unified parser.
COMMANDS = (
    "run", "lint", "check", "analyze", "faults", "chaos", "trace", "bench",
    "serve", "submit", "status", "result", "predict",
)

#: subcommands implemented by repro.analysis.cli (kept for callers that
#: dispatch on these names; the unified parser mounts them directly).
ANALYSIS_COMMANDS = ("lint", "check", "analyze")
#: subcommands implemented by repro.faults.cli.
FAULTS_COMMANDS = ("faults",)


def _configure_run_parser(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "artifact",
        nargs="?",
        choices=ARTIFACTS + ("all", "validate"),
        help="which paper artifact to regenerate ('validate' runs model "
        "self-checks); optional when --validate-exact is given",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="matrix-size scale; 1.0 = published UFL sizes (default 0.25)",
    )
    p.add_argument(
        "--ids",
        type=str,
        default="",
        help="comma-separated Table I matrix ids to restrict the suite",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=16,
        help="SpMV repetitions per timed run (default 16)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard the sweep over (default 1 = serial)",
    )
    p.add_argument(
        "--machine",
        choices=list_machines(),
        default=DEFAULT_MACHINE,
        help="machine model to run the sweep on (default %(default)s; "
        "see docs/MACHINES.md)",
    )
    p.add_argument(
        "--exact",
        action="store_true",
        help="replay every run on the event-driven simulator instead of "
        "the analytic fast path (same numbers, much slower; see "
        "docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--mode",
        choices=("sim", "model", "exact-trace", "predict"),
        default=None,
        help="answer tier for every sweep point (default: model, or sim "
        "with --exact); 'predict' answers from the machine's trained "
        "predictor and falls back to the model when none is stored "
        "(see docs/PREDICTOR.md)",
    )
    p.add_argument(
        "--validate-exact",
        action="store_true",
        help="compare the analytic cache model's miss ratios against "
        "bitwise-exact vectorized trace replay over the suite, one row "
        "per matrix (honours --scale/--ids/--iterations; see "
        "docs/MODEL.md)",
    )
    add_supervise_flags(p)
    add_output_flag(p)


def build_parser() -> argparse.ArgumentParser:
    """Construct the unified argparse parser for ``python -m repro``."""
    from .analysis.cli import (
        configure_analyze_parser,
        configure_check_parser,
        configure_lint_parser,
    )
    from .faults.chaos import configure_chaos_parser
    from .faults.cli import configure_faults_parser
    from .obs.cli import configure_bench_parser, configure_trace_parser

    p = argparse.ArgumentParser(
        prog="repro",
        description="The SCC SpMV paper reproduction: artifacts, analysis "
        "tooling, fault injection and observability.",
    )
    sub = p.add_subparsers(dest="command", metavar="command")

    run_p = sub.add_parser(
        "run", help="regenerate paper tables/figures on the model"
    )
    _configure_run_parser(run_p)
    run_p.set_defaults(handler=_run_artifacts)

    lint_p = sub.add_parser(
        "lint", help="statically lint RCCE/simulator programs"
    )
    configure_lint_parser(lint_p)
    lint_p.set_defaults(handler=_dispatch_lint)

    check_p = sub.add_parser(
        "check", help="run programs under the dynamic race/deadlock checkers"
    )
    configure_check_parser(check_p)
    check_p.set_defaults(handler=_dispatch_check)

    analyze_p = sub.add_parser(
        "analyze",
        help="symbolic deadlock/congruence/capacity analysis over core counts",
    )
    configure_analyze_parser(analyze_p)
    analyze_p.set_defaults(handler=_dispatch_analyze)

    faults_p = sub.add_parser(
        "faults", help="fault-injection runs and campaign repair"
    )
    configure_faults_parser(faults_p)
    faults_p.set_defaults(handler=_dispatch_faults)

    chaos_p = sub.add_parser(
        "chaos",
        help="OS-level chaos harness: SIGKILL/SIGSTOP workers and corrupt "
        "store entries under supervision, then verify the invariants",
    )
    configure_chaos_parser(chaos_p)
    chaos_p.set_defaults(handler=_dispatch_chaos)

    trace_p = sub.add_parser(
        "trace", help="run one traced experiment and export the trace"
    )
    configure_trace_parser(trace_p)
    trace_p.set_defaults(handler=_dispatch_trace)

    bench_p = sub.add_parser(
        "bench", help="benchmark snapshots (model throughput, tracer overhead)"
    )
    configure_bench_parser(bench_p)
    bench_p.set_defaults(handler=_dispatch_bench)

    from .serve.cli import (
        configure_result_parser,
        configure_serve_parser,
        configure_status_parser,
        configure_submit_parser,
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign server: HTTP job queue with store-backed "
        "dedup over a supervised worker pool (see docs/SERVING.md)",
    )
    configure_serve_parser(serve_p)
    serve_p.set_defaults(handler=_dispatch_serve)

    submit_p = sub.add_parser(
        "submit", help="submit a campaign spec to a running `repro serve`"
    )
    configure_submit_parser(submit_p)
    submit_p.set_defaults(handler=_dispatch_submit)

    status_p = sub.add_parser(
        "status", help="job states and dedup/simulation counts of the server"
    )
    configure_status_parser(status_p)
    status_p.set_defaults(handler=_dispatch_status)

    result_p = sub.add_parser(
        "result", help="fetch a finished server job's records"
    )
    configure_result_parser(result_p)
    result_p.set_defaults(handler=_dispatch_result)

    from .predict.cli import configure_predict_parser

    predict_p = sub.add_parser(
        "predict",
        help="train/evaluate/inspect the feature-based performance "
        "predictor behind mode='predict' (see docs/PREDICTOR.md)",
    )
    configure_predict_parser(predict_p)
    predict_p.set_defaults(handler=_dispatch_predict)

    return p


def _parse_ids(raw: str) -> Optional[List[int]]:
    raw = raw.strip()
    if not raw:
        return None
    try:
        return [int(tok) for tok in raw.split(",")]
    except ValueError as exc:
        raise SystemExit(f"--ids must be comma-separated integers: {exc}") from exc


def _render(
    artifact: str,
    exps,
    iterations: int,
    out,
    mode: str = "model",
    workers: int = 1,
    policy=None,
) -> None:
    if artifact == "table1":
        rows = table1_data(exps)
        print(banner("Table I: matrix benchmark suite"), file=out)
        print(
            format_table(
                rows,
                ["id", "name", "n", "nnz", "nnz_per_row", "ws_mbytes", "family"],
            ),
            file=out,
        )
    elif artifact == "fig3":
        data = fig3_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        series = [data[h] for h in FIG3_HOPS]
        rel = [100 * (1 - v / series[0]) for v in series]
        print(banner("Fig. 3: single-core performance vs hops to MC"), file=out)
        print(
            format_series(
                "hops", FIG3_HOPS, {"avg MFLOPS/s": series, "degradation %": rel}
            ),
            file=out,
        )
    elif artifact == "fig5":
        std, dr = fig5_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        print(banner("Fig. 5: standard vs distance-reduction mapping"), file=out)
        print(
            format_series(
                "cores",
                FIG5_CORE_COUNTS,
                {
                    "standard MFLOPS/s": std,
                    "dist-reduction MFLOPS/s": dr,
                    "speedup": [d / s for d, s in zip(dr, std)],
                },
            ),
            file=out,
        )
    elif artifact == "fig6":
        rows = fig6_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        cols = ["id", "name"]
        for n in FIG6_CORE_COUNTS:
            cols += [f"wsKB/core@{n}", f"MFLOPS@{n}"]
        print(banner("Fig. 6: performance vs working set"), file=out)
        print(format_table(rows, cols, floatfmt=".1f"), file=out)
    elif artifact == "fig7":
        with_l2, without_l2 = fig7_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        on = [average_gflops(with_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
        off = [average_gflops(without_l2[n]) * 1000 for n in FIG7_CORE_COUNTS]
        print(banner("Fig. 7: L2 caches disabled"), file=out)
        print(
            format_series(
                "cores",
                FIG7_CORE_COUNTS,
                {
                    "with L2 MFLOPS/s": on,
                    "without L2 MFLOPS/s": off,
                    "loss %": [100 * (1 - o / w) for o, w in zip(off, on)],
                },
                floatfmt=".1f",
            ),
            file=out,
        )
    elif artifact == "fig8":
        rows = fig8_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        cols = ["id", "name"] + [f"speedup@{n}" for n in FIG6_CORE_COUNTS]
        print(banner("Fig. 8: no-x-miss kernel speedup"), file=out)
        print(format_table(rows, cols), file=out)
    elif artifact == "fig9":
        results = fig9_data(exps, iterations, mode=mode, workers=workers, policy=policy)
        perf, eff = fig9_summary(results)
        print(banner("Fig. 9(a): performance per configuration"), file=out)
        print(
            format_series(
                "cores",
                FIG9_CORE_COUNTS,
                {f"{name} MFLOPS/s": series for name, series in perf.items()},
                floatfmt=".1f",
            ),
            file=out,
        )
        machine = exps[0][1].machine
        print(banner("Fig. 9(b): full-system power efficiency"), file=out)
        print(
            format_table(
                [
                    {
                        "config": cfg.name,
                        "watts": machine.chip_power(cfg),
                        "MFLOPS/W": eff[cfg.name],
                    }
                    for cfg in machine.presets.values()
                ],
                ["config", "watts", "MFLOPS/W"],
            ),
            file=out,
        )
    elif artifact == "fig10":
        rows = sorted(fig10_data(exps, iterations, mode=mode, workers=workers, policy=policy), key=lambda r: r["gflops"])
        print(banner("Fig. 10: architectural comparison"), file=out)
        print(
            format_table(
                rows, ["system", "gflops", "watts", "mflops_per_watt", "source"]
            ),
            file=out,
        )
    else:  # pragma: no cover - parser restricts choices
        raise SystemExit(f"unknown artifact {artifact!r}")


def _render_validation(out) -> int:
    """Model self-checks: trace-exact replay, MC queue, kernel numerics.

    Returns the number of failed checks (0 = healthy).
    """
    import numpy as np

    from .core.timing import _controller_line_time
    from .core.trace import access_summary, characterize_partition
    from .scc.mcqueue import CoreWorkload, simulate_controller
    from .scc.tracegen import replay_trace
    from .sparse import banded, partition_rows_balanced, random_uniform, spmv

    failures = 0
    rows = []

    # 1. Analytical stream model vs trace-exact cache replay.
    for label, a in (
        ("banded", banded(2500, 10.0, 14, seed=1)),
        ("random", random_uniform(2500, 10.0, seed=2)),
    ):
        [trace] = characterize_partition(a, partition_rows_balanced(a, 1))
        model = access_summary(trace, iterations=1).l2_misses
        exact = replay_trace(a, iterations=1).mem_misses
        err = 100 * abs(model - exact) / max(exact, 1)
        ok = err < 30.0
        failures += not ok
        rows.append(
            {"check": f"trace-exact misses ({label})", "result": f"{err:.1f}% err",
             "status": "ok" if ok else "FAIL"}
        )

    # 2. Closed-form MC equilibrium vs event-driven FIFO queue.
    wl = CoreWorkload(compute_time=0.005, n_lines=20_000, latency=132.5e-9)
    capacity = 0.95e9 / 32
    event = max(simulate_controller([wl] * 12, capacity))
    t_star = _controller_line_time([wl.compute_time] * 12, [float(wl.n_lines)] * 12,
                                   [wl.latency] * 12, capacity)
    closed = wl.compute_time + wl.n_lines * max(t_star, wl.latency)
    err = 100 * abs(closed - event) / event
    ok = err < 10.0
    failures += not ok
    rows.append(
        {"check": "MC equilibrium vs queue", "result": f"{err:.1f}% err",
         "status": "ok" if ok else "FAIL"}
    )

    # 3. Kernel numerics vs SciPy.
    a = banded(1500, 8.0, 10, seed=3)
    x = np.random.default_rng(0).uniform(size=a.n_cols)
    ok = bool(np.allclose(spmv(a, x), a.to_scipy() @ x, rtol=1e-9))
    failures += not ok
    rows.append(
        {"check": "SpMV vs SciPy", "result": "allclose(1e-9)",
         "status": "ok" if ok else "FAIL"}
    )

    # 4. Power anchors.
    for cfg, target in ((CONF0, 83.3), (CONF1, 107.4)):
        got = cfg.full_chip_power()
        ok = abs(got - target) < 0.5
        failures += not ok
        rows.append(
            {"check": f"power anchor {cfg.name}", "result": f"{got:.1f} W",
             "status": "ok" if ok else "FAIL"}
        )

    print(banner("Model self-validation"), file=out)
    print(format_table(rows, ["check", "result", "status"]), file=out)
    print(f"\n{failures} failure(s)" if failures else "\nall checks passed", file=out)
    return failures


def _render_exact_validation(args: argparse.Namespace, out) -> int:
    """``repro run --validate-exact``: analytic model vs exact replay.

    For every selected suite matrix, the analytic stream model's memory
    misses (:func:`repro.core.trace.access_summary`) are compared with
    bitwise-exact trace replay on the vectorized engine at the same
    scale and iteration count.  Both are expressed as miss ratios over
    the kernel's ``(3n + 3nnz) * iterations`` accesses; the table shows
    the per-matrix delta in percentage points.  This is the full-suite
    version of the spot checks in ``repro run validate``, made feasible
    by the set-parallel engine (scalar replay at this scale would take
    hours; see docs/PERFORMANCE.md).
    """
    from .core.trace import access_summary, characterize_partition
    from .scc.tracegen import replay_trace
    from .sparse import partition_rows_balanced
    from .sparse.suite import iter_suite

    rows = []
    deltas = []
    for e, a in iter_suite(scale=args.scale, ids=_parse_ids(args.ids)):
        [trace] = characterize_partition(a, partition_rows_balanced(a, 1))
        model_misses = access_summary(trace, iterations=args.iterations).l2_misses
        exact = replay_trace(
            a, iterations=args.iterations, engine="vectorized"
        )
        accesses = (3 * a.n_rows + 3 * a.nnz) * args.iterations
        model_pct = 100.0 * model_misses / accesses
        exact_pct = 100.0 * exact.mem_misses / accesses
        delta = model_pct - exact_pct
        deltas.append(abs(delta))
        rows.append(
            {
                "id": e.mid,
                "name": e.name,
                "accesses": accesses,
                "model miss %": model_pct,
                "exact miss %": exact_pct,
                "delta pp": delta,
            }
        )
    if not rows:
        raise SystemExit("no matrices selected; check --ids")
    print(banner("Exact-replay validation: analytic model vs trace-exact misses"), file=out)
    print(
        format_table(
            rows,
            ["id", "name", "accesses", "model miss %", "exact miss %", "delta pp"],
            floatfmt=".3f",
        ),
        file=out,
    )
    print(
        f"\nmean |delta| = {sum(deltas) / len(deltas):.3f} pp "
        f"over {len(rows)} matrices "
        f"(scale {args.scale}, {args.iterations} iterations)",
        file=out,
    )
    return 0


def _run_artifacts(args: argparse.Namespace, out=None) -> int:
    """Handler of ``repro run``: render the requested artifact(s)."""
    if not 0 < args.scale <= 1.0:
        raise SystemExit(f"--scale must be in (0, 1], got {args.scale}")
    if args.iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {args.iterations}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    machine = get_machine(getattr(args, "machine", DEFAULT_MACHINE))
    if args.exact and args.mode not in (None, "sim"):
        raise SystemExit(
            f"--exact means --mode sim; drop one of them (got --mode {args.mode})"
        )
    if args.mode is not None and not machine.supports_mode(args.mode):
        raise SystemExit(
            f"machine {machine.machine_id!r} supports modes "
            f"{', '.join(machine.supported_modes)}, got --mode {args.mode}"
        )
    if args.exact and not machine.supports_mode("sim"):
        raise SystemExit(
            f"--exact needs the event-driven runtime, which machine "
            f"{machine.machine_id!r} does not carry (supported modes: "
            f"{', '.join(machine.supported_modes)}); drop --exact or use "
            f"--machine {DEFAULT_MACHINE}"
        )
    if args.validate_exact and machine.machine_id != DEFAULT_MACHINE:
        raise SystemExit(
            f"--validate-exact replays SCC cache traces and is only "
            f"meaningful on --machine {DEFAULT_MACHINE}, "
            f"got {machine.machine_id!r}"
        )
    with open_output(args, out) as stream:
        if args.validate_exact:
            return _render_exact_validation(args, stream)
        if args.artifact is None:
            raise SystemExit(
                "repro run: an artifact (or --validate-exact) is required"
            )
        if args.artifact == "validate":
            return _render_validation(stream)
        exps = suite_experiments(
            scale=args.scale, ids=_parse_ids(args.ids), machine=machine.machine_id
        )
        if not exps:
            raise SystemExit("no matrices selected; check --ids")
        mode = args.mode or ("sim" if args.exact else DEFAULT_MODE)
        policy = policy_from_args(args)
        artifacts = ARTIFACTS if args.artifact == "all" else (args.artifact,)
        for artifact in artifacts:
            _render(
                artifact, exps, args.iterations, stream,
                mode=mode, workers=args.workers, policy=policy,
            )
    return 0


def _dispatch_lint(args, out=None) -> int:
    from .analysis.cli import run_lint

    return run_lint(args, out=out)


def _dispatch_check(args, out=None) -> int:
    from .analysis.cli import run_check

    return run_check(args, out=out)


def _dispatch_analyze(args, out=None) -> int:
    from .analysis.cli import run_analyze

    return run_analyze(args, out=out)


def _dispatch_faults(args, out=None) -> int:
    from .faults.cli import run_faults

    return run_faults(args, out=out)


def _dispatch_chaos(args, out=None) -> int:
    from .faults.chaos import run_chaos

    return run_chaos(args, out=out)


def _dispatch_trace(args, out=None) -> int:
    from .obs.cli import run_trace

    return run_trace(args, out=out)


def _dispatch_bench(args, out=None) -> int:
    from .obs.cli import run_bench

    return run_bench(args, out=out)


def _dispatch_serve(args, out=None) -> int:
    from .serve.cli import run_serve

    return run_serve(args, out=out)


def _dispatch_submit(args, out=None) -> int:
    from .serve.cli import run_submit

    return run_submit(args, out=out)


def _dispatch_status(args, out=None) -> int:
    from .serve.cli import run_status

    return run_status(args, out=out)


def _dispatch_result(args, out=None) -> int:
    from .serve.cli import run_result

    return run_result(args, out=out)


def _dispatch_predict(args, out=None) -> int:
    from .predict.cli import run_predict

    return run_predict(args, out=out)


def _normalize_argv(argv: List[str]) -> List[str]:
    """Legacy alias shim: ``repro fig5`` means ``repro run fig5``."""
    if argv and argv[0] in ARTIFACTS + ("all", "validate"):
        return ["run", *argv]
    return argv


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = _normalize_argv(list(argv))
    if argv and not argv[0].startswith("-") and argv[0] not in COMMANDS:
        print(
            f"repro: unknown command {argv[0]!r} — expected one of: "
            f"{', '.join(COMMANDS)} (or a paper artifact: "
            f"{', '.join(ARTIFACTS + ('all', 'validate'))})",
            file=sys.stderr,
        )
        return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) is None:
        parser.print_usage(sys.stderr)
        return 2
    return args.handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
