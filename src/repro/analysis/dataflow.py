"""Abstract interpretation of RCCE programs into communication graphs.

The entry points (:func:`analyze_source`, :func:`analyze_paths`,
:func:`analyze_function`) symbolically execute every UE function (the
repo convention: a generator with a parameter named ``comm``) once per
``(ue, n_ues)`` pair over a configurable core-count range, reducing it
to per-core :class:`~repro.analysis.commgraph.CommGraph` traces that
the DF50x provers consume.

The interpreter is *concrete where it can be, abstract where it must
be*: ``comm.ue`` and ``comm.num_ues`` are concrete integers per
evaluation, so rank arithmetic (``(me ± 1) % n``, ``me ^ 1``), rank
branches and ``range(num_ues - 1)`` loops all evaluate exactly.
Everything derived from runtime data (matrix payloads, reduction
results) becomes an abstract value carrying two facts: a **uniformity
taint** (provably identical on every UE — e.g. an ``allreduce`` result)
and, where known, a **payload byte bound**.  Undecidable branches that
guard communication fork the interpretation (path-bounded); rank-uniform
data loops (``while not converged``) are unrolled a fixed number of
times, which is sound for congruence because every UE provably executes
the same trip count.  Constructs the model cannot follow (a helper
generator that receives ``comm``, rank-dependent data loops around
communication) mark the trace *incomplete*: the liveness provers then
stay silent and a ``DF500`` note is reported instead of a guess.
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..rcce.comm_meta import COMM_API, ArgSpec, CommOp
from ..rcce.mpb import MPB_BYTES_PER_CORE
from .commgraph import (
    CommEvent,
    CommGraph,
    Decision,
    Issue,
    Span,
    UETrace,
    prove_capacity,
    prove_congruence,
    prove_deadlock,
)
from .findings import Finding, Severity

__all__ = [
    "DataflowRule",
    "DATAFLOW_RULES",
    "all_dataflow_rules",
    "get_dataflow_rule",
    "Value",
    "explore_ue",
    "build_graph",
    "analyze_function",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "DEFAULT_MIN_UES",
    "DEFAULT_MAX_UES",
]

DEFAULT_MIN_UES = 2
DEFAULT_MAX_UES = 16

#: bounded-interpretation knobs (documented soundness limits).
MAX_CONCRETE_UNROLL = 128   #: cap on exactly-counted loop iterations
UNIFORM_UNROLL = 2          #: trip count modeled for rank-uniform data loops
MAX_PATHS = 32              #: feasible-path cap per UE
MAX_ASSIGNMENTS = 64        #: global trace-combination cap per core count
MAX_FUEL = 200_000          #: AST evaluations per single UE replay


# --------------------------------------------------------------------------
# Rule catalogue
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DataflowRule:
    """One rule of the symbolic analyzer (no AST check function — the
    provers in :mod:`repro.analysis.commgraph` produce its findings)."""

    id: str
    name: str
    severity: Severity
    summary: str
    hint: str


DATAFLOW_RULES: Dict[str, DataflowRule] = {
    r.id: r
    for r in (
        DataflowRule(
            "DF500",
            "analysis-incomplete",
            Severity.INFO,
            "program uses constructs the symbolic analyzer cannot follow",
            "the liveness provers stay silent on this function; rely on "
            "`repro check` (dynamic) for it, or restructure the flagged "
            "construct",
        ),
        DataflowRule(
            "DF501",
            "static-deadlock",
            Severity.ERROR,
            "the symbolic schedule replay blocks forever (wait-for cycle, "
            "orphaned wait, or a peer the runtime rejects)",
            "every rendezvous send needs a reachable matching recv and "
            "every collective needs all ranks; stagger ring exchanges "
            "(even ranks send first) and check neighbor arithmetic at "
            "the failing core counts",
        ),
        DataflowRule(
            "DF502",
            "collective-incongruence",
            Severity.ERROR,
            "UEs reach different collective sequences on a feasible branch "
            "assignment",
            "all ranks must enter the same collectives in the same order "
            "with the same root and (reduce/allreduce) contribution shape",
        ),
        DataflowRule(
            "DF503",
            "mpb-capacity",
            Severity.WARNING,
            f"statically-known payload exceeds the {MPB_BYTES_PER_CORE} B "
            "per-core MPB budget",
            "the transfer is chunk-serialized through the 8 KB MPB; tile "
            "the message or restructure to smaller exchanges",
        ),
    )
}


def all_dataflow_rules() -> List[DataflowRule]:
    """Every DF5xx rule, ordered by id."""
    return [DATAFLOW_RULES[k] for k in sorted(DATAFLOW_RULES)]


def get_dataflow_rule(rule_id: str) -> DataflowRule:
    """Look up one DF rule (KeyError names the unknown id)."""
    if rule_id not in DATAFLOW_RULES:
        raise KeyError(f"unknown dataflow rule {rule_id!r}; known: {sorted(DATAFLOW_RULES)}")
    return DATAFLOW_RULES[rule_id]


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Value:
    """One abstract value: possibly-known constant + uniformity taint.

    ``uniform`` asserts the value is identical on every UE (module
    globals, shared parameters, collective results).  ``nbytes`` is a
    wire-size bound for payload-shaped unknowns (``np.zeros(n)``).
    """

    known: bool
    const: Any = None
    uniform: bool = True
    nbytes: Optional[int] = None

    @classmethod
    def of(cls, const: Any, uniform: bool = True) -> "Value":
        return cls(known=True, const=const, uniform=uniform)

    @classmethod
    def unknown(cls, uniform: bool = False, nbytes: Optional[int] = None) -> "Value":
        return cls(known=False, uniform=uniform, nbytes=nbytes)

    def as_int(self) -> Optional[int]:
        """Concrete int when known and integral (bools excluded)."""
        if self.known and isinstance(self.const, int) and not isinstance(self.const, bool):
            return self.const
        return None

    def truthiness(self) -> Optional[bool]:
        """Concrete truth value, or None when undecidable."""
        if not self.known:
            return None
        try:
            return bool(self.const)
        except Exception:
            return None


_UNKNOWN = Value.unknown()

_BINOPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitOr: operator.or_,
    ast.BitXor: operator.xor,
    ast.BitAnd: operator.and_,
}

_CMPOPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

#: numpy array constructors whose byte size is 8 * n (float64 default).
_NP_SIZED_CTORS = frozenset({"zeros", "ones", "empty", "full", "arange"})


def _dotted_name(func: ast.AST) -> str:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _payload_nbytes(value: Value) -> Optional[int]:
    """Wire-size bound of a payload value (mirrors the runtime's rule)."""
    if value.known:
        if value.const is None:
            return 0  # the runtime charges 0 for a None collective payload
        from ..rcce.api import payload_bytes

        try:
            return payload_bytes(value.const)
        except Exception:
            return None
    return value.nbytes


# --------------------------------------------------------------------------
# Control-flow signals
# --------------------------------------------------------------------------


class _Return(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Incomplete(Exception):
    """Abort the replay: the construct cannot be modeled at all."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------------
# The per-UE interpreter
# --------------------------------------------------------------------------


class _CommScan:
    """Cached 'does this subtree communicate?' queries on one AST."""

    def __init__(self) -> None:
        self._cache: Dict[int, bool] = {}

    def __call__(self, node: ast.AST) -> bool:
        key = id(node)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        found = False
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == "comm"
            ):
                op = COMM_API.get(sub.func.attr)
                if op is not None and op.is_communication:
                    found = True
                    break
        self._cache[key] = found
        return found


class _UERun:
    """One scripted replay of a UE function at a concrete (ue, n)."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        ue: int,
        n_ues: int,
        script: Sequence[bool],
        scan: _CommScan,
        globals_env: Optional[Dict[str, Value]] = None,
    ) -> None:
        self.fn = fn
        self.ue = ue
        self.n = n_ues
        self.script = list(script)
        self.scan = scan
        self.env: Dict[str, Value] = dict(globals_env or {})
        self.events: List[CommEvent] = []
        self.decisions: List[Decision] = []
        self.incomplete: List[str] = []
        self.fuel = MAX_FUEL
        self._site_counts: Dict[Tuple[int, int], int] = {}

    # -- plumbing ----------------------------------------------------------

    def execute(self) -> UETrace:
        for arg in self.fn.args.args + self.fn.args.kwonlyargs + self.fn.args.posonlyargs:
            # every extra parameter is the same shared object on all UEs
            self.env[arg.arg] = Value.unknown(uniform=True)
        if self.fn.args.vararg is not None:
            self.env[self.fn.args.vararg.arg] = Value.unknown(uniform=True)
        if self.fn.args.kwarg is not None:
            self.env[self.fn.args.kwarg.arg] = Value.unknown(uniform=True)
        try:
            self._exec_body(self.fn.body)
        except _Return:
            pass
        except (_Break, _Continue):
            self.incomplete.append("break/continue outside any analyzable loop")
        except _Incomplete as exc:
            self.incomplete.append(exc.reason)
        except RecursionError:  # pragma: no cover - pathological nesting
            self.incomplete.append("program nests too deeply to interpret")
        return UETrace(
            ue=self.ue,
            events=self.events,
            decisions=tuple(self.decisions),
            incomplete=list(dict.fromkeys(self.incomplete)),
        )

    def _spend(self) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise _Incomplete("interpretation budget exhausted")

    def _decide(self, node: ast.AST, uniform: bool) -> bool:
        site = (int(getattr(node, "lineno", 0) or 0), int(getattr(node, "col_offset", -1) or 0) + 1)
        occurrence = self._site_counts.get(site, 0)
        self._site_counts[site] = occurrence + 1
        index = len(self.decisions)
        taken = self.script[index] if index < len(self.script) else False
        self.decisions.append(Decision(key=(*site, occurrence), taken=taken, uniform=uniform))
        if len(self.decisions) > MAX_PATHS * 4:
            raise _Incomplete("too many undecidable branches around communication")
        return taken

    def _havoc(self, node: ast.AST) -> None:
        """Forget every name the subtree might assign."""
        for sub in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign, ast.For)):
                targets = [sub.target]
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                targets = [sub.optional_vars]
            for t in targets:
                for leaf in ast.walk(t):
                    if isinstance(leaf, ast.Name):
                        self.env[leaf.id] = _UNKNOWN

    # -- statements --------------------------------------------------------

    def _exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        self._spend()
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value)
        elif isinstance(stmt, ast.AugAssign):
            cur = self._eval(stmt.target) if isinstance(stmt.target, ast.Name) else _UNKNOWN
            rhs = self._eval(stmt.value)
            self._assign(stmt.target, self._binop(type(stmt.op), cur, rhs))
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
            raise _Return()
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, _UNKNOWN)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                if any(self.scan(h) for h in handler.body):
                    self.incomplete.append(
                        f"line {handler.lineno}: communication inside an except "
                        f"handler (reachability is data-dependent)"
                    )
            self._exec_body(stmt.body)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            # An exception does not park this UE — it aborts the whole
            # job, so peers "blocked" past this point never hang in
            # reality.  Modeling it as clean early termination would
            # fake orphaned-collective deadlocks; abstain instead.
            raise _Incomplete(
                f"line {stmt.lineno}: raise aborts the job (crash, not "
                f"hang) — liveness verdicts do not apply on this path"
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[stmt.name] = Value.unknown(uniform=True)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    self.env.pop(t.id, None)
        elif isinstance(stmt, ast.Match):
            if self.scan(stmt):
                raise _Incomplete(
                    f"line {stmt.lineno}: communication inside a match statement"
                )
            self._havoc(stmt)
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal, ast.Assert)):
            pass
        else:
            if self.scan(stmt):
                raise _Incomplete(
                    f"line {getattr(stmt, 'lineno', 0)}: unsupported statement "
                    f"{type(stmt).__name__} around communication"
                )
            self._havoc(stmt)

    def _exec_if(self, stmt: ast.If) -> None:
        cond = self._eval(stmt.test)
        truth = cond.truthiness()
        if truth is not None:
            self._exec_body(stmt.body if truth else stmt.orelse)
            return
        communicates = any(self.scan(s) for s in stmt.body) or any(
            self.scan(s) for s in stmt.orelse
        )
        if not communicates:
            self._havoc(stmt)
            return
        taken = self._decide(stmt, uniform=cond.uniform)
        self._exec_body(stmt.body if taken else stmt.orelse)

    def _loop_once(self, stmt: ast.For | ast.While) -> bool:
        """Run one loop body; returns False when the loop must stop."""
        try:
            self._exec_body(stmt.body)
        except _Break:
            return False
        except _Continue:
            pass
        return True

    def _exec_while(self, stmt: ast.While) -> None:
        communicates = any(self.scan(s) for s in stmt.body)
        for _ in range(MAX_CONCRETE_UNROLL):
            cond = self._eval(stmt.test)
            truth = cond.truthiness()
            if truth is False:
                self._exec_body(stmt.orelse)
                return
            if truth is None:
                break  # undecidable: handled below
            if not self._loop_once(stmt):
                return
        else:
            raise _Incomplete(
                f"line {stmt.lineno}: while loop exceeds {MAX_CONCRETE_UNROLL} "
                f"concrete iterations"
            )
        cond = self._eval(stmt.test)
        if not communicates:
            self._havoc(stmt)
            return
        if not cond.uniform:
            raise _Incomplete(
                f"line {stmt.lineno}: rank-dependent while loop around "
                f"communication (trip counts may differ per UE)"
            )
        # Rank-uniform data loop: every UE provably executes the same trip
        # count, so a fixed unroll preserves congruence and periodic
        # matching (documented soundness limit).
        for _ in range(UNIFORM_UNROLL):
            if self._eval(stmt.test).truthiness() is False:
                break
            if not self._loop_once(stmt):
                return
        self._exec_body(stmt.orelse)

    def _exec_for(self, stmt: ast.For) -> None:
        iterable = self._eval(stmt.iter)
        communicates = any(self.scan(s) for s in stmt.body)
        if iterable.known:
            try:
                items = list(iterable.const)
            except TypeError:
                items = None
            if items is not None:
                if len(items) > MAX_CONCRETE_UNROLL:
                    raise _Incomplete(
                        f"line {stmt.lineno}: for loop over {len(items)} items "
                        f"exceeds the {MAX_CONCRETE_UNROLL}-iteration bound"
                    )
                for item in items:
                    self._assign(stmt.target, Value.of(item, uniform=iterable.uniform))
                    if not self._loop_once(stmt):
                        return
                self._exec_body(stmt.orelse)
                return
        if not communicates:
            self._havoc(stmt)
            return
        if not iterable.uniform:
            raise _Incomplete(
                f"line {stmt.lineno}: rank-dependent for loop around "
                f"communication (trip counts may differ per UE)"
            )
        for _ in range(UNIFORM_UNROLL):
            self._assign(stmt.target, Value.unknown(uniform=True))
            if not self._loop_once(stmt):
                return
        self._exec_body(stmt.orelse)

    def _assign(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems: Optional[List[Any]] = None
            if value.known:
                try:
                    elems = list(value.const)
                except TypeError:
                    elems = None
            has_star = any(isinstance(e, ast.Starred) for e in target.elts)
            if elems is not None and not has_star and len(elems) == len(target.elts):
                for t, e in zip(target.elts, elems):
                    self._assign(t, Value.of(e, uniform=value.uniform))
            else:
                for t in target.elts:
                    inner = t.value if isinstance(t, ast.Starred) else t
                    self._assign(inner, Value.unknown(uniform=value.uniform))
        # Subscript/Attribute targets mutate shared containers — invisible
        # to the comm model, so they are deliberately ignored.

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr) -> Value:
        self._spend()
        if isinstance(node, ast.Constant):
            return Value.of(node.value)
        if isinstance(node, ast.Name):
            # unresolved globals are module state: shared, hence uniform
            return self.env.get(node.id, Value.unknown(uniform=True))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.BinOp):
            return self._binop(type(node.op), self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.IfExp):
            cond = self._eval(node.test)
            truth = cond.truthiness()
            if truth is not None:
                return self._eval(node.body if truth else node.orelse)
            a, b = self._eval(node.body), self._eval(node.orelse)
            return Value.unknown(uniform=cond.uniform and a.uniform and b.uniform)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.YieldFrom):
            return self._yield_from(node)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value)
            return _UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._container(node)
        if isinstance(node, ast.Dict):
            values = [self._eval(v) for v in node.values if v is not None]
            keys = [self._eval(k) for k in node.keys if k is not None]
            return Value.unknown(uniform=all(v.uniform for v in values + keys))
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Slice):
            parts = [self._eval(p) for p in (node.lower, node.upper, node.step) if p is not None]
            return Value.unknown(uniform=all(p.uniform for p in parts))
        if isinstance(node, ast.JoinedStr):
            return Value.unknown(uniform=self._fallback_uniform(node))
        if isinstance(node, ast.Lambda):
            return Value.unknown(uniform=self._fallback_uniform(node))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return Value.unknown(uniform=self._fallback_uniform(node))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._assign(node.target, value)
            return value
        return Value.unknown(uniform=self._fallback_uniform(node))

    def _fallback_uniform(self, node: ast.AST) -> bool:
        """Conservative uniformity of an unmodeled expression: uniform
        iff every name it reads holds a uniform value and it never
        touches ``comm``."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if sub.id == "comm":
                    return False
                if not self.env.get(sub.id, Value.unknown(uniform=True)).uniform:
                    return False
        return True

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        if isinstance(node.value, ast.Name) and node.value.id == "comm":
            if node.attr == "ue":
                return Value.of(self.ue, uniform=False)
            if node.attr == "num_ues":
                return Value.of(self.n, uniform=True)
            return Value.unknown(uniform=False)  # core, wtime ref, _rt, ...
        base = self._eval(node.value)
        return Value.unknown(uniform=base.uniform)

    def _binop(self, op_type: type, a: Value, b: Value) -> Value:
        uniform = a.uniform and b.uniform
        fn = _BINOPS.get(op_type)
        if fn is not None and a.known and b.known:
            try:
                return Value.of(fn(a.const, b.const), uniform=uniform)
            except Exception:
                return Value.unknown(uniform=uniform)
        return Value.unknown(uniform=uniform)

    def _unaryop(self, node: ast.UnaryOp) -> Value:
        val = self._eval(node.operand)
        if val.known:
            try:
                if isinstance(node.op, ast.USub):
                    return Value.of(-val.const, uniform=val.uniform)
                if isinstance(node.op, ast.UAdd):
                    return Value.of(+val.const, uniform=val.uniform)
                if isinstance(node.op, ast.Not):
                    return Value.of(not val.const, uniform=val.uniform)
                if isinstance(node.op, ast.Invert):
                    return Value.of(~val.const, uniform=val.uniform)
            except Exception:
                pass
        return Value.unknown(uniform=val.uniform)

    def _boolop(self, node: ast.BoolOp) -> Value:
        is_and = isinstance(node.op, ast.And)
        uniform = True
        for sub in node.values:
            val = self._eval(sub)
            uniform = uniform and val.uniform
            truth = val.truthiness()
            if truth is None:
                return Value.unknown(uniform=uniform)
            if truth is not is_and:  # short-circuit decides the result
                return val
        return val  # last operand wins when no short-circuit fired

    def _compare(self, node: ast.Compare) -> Value:
        left = self._eval(node.left)
        uniform = left.uniform
        result: Optional[bool] = True
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator)
            uniform = uniform and right.uniform
            fn = _CMPOPS.get(type(op))
            if result is not None and fn is not None and left.known and right.known:
                try:
                    verdict = bool(fn(left.const, right.const))
                except Exception:
                    result = None
                else:
                    if not verdict:
                        return Value.of(False, uniform=uniform)
            else:
                result = None
            left = right
        if result is None:
            return Value.unknown(uniform=uniform)
        return Value.of(True, uniform=uniform)

    def _container(self, node: ast.Tuple | ast.List | ast.Set) -> Value:
        values = [self._eval(e) for e in node.elts]
        uniform = all(v.uniform for v in values)
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return Value.unknown(uniform=uniform)
        if all(v.known for v in values):
            consts = [v.const for v in values]
            try:
                if isinstance(node, ast.Tuple):
                    return Value.of(tuple(consts), uniform=uniform)
                if isinstance(node, ast.Set):
                    return Value.of(set(consts), uniform=uniform)
                return Value.of(consts, uniform=uniform)
            except Exception:
                return Value.unknown(uniform=uniform)
        sizes = [_payload_nbytes(v) for v in values]
        nbytes = sum(s for s in sizes if s is not None) if all(s is not None for s in sizes) else None
        return Value.unknown(uniform=uniform, nbytes=nbytes)

    def _subscript(self, node: ast.Subscript) -> Value:
        base = self._eval(node.value)
        index = self._eval(node.slice)
        uniform = base.uniform and index.uniform
        if base.known and index.known:
            try:
                return Value.of(base.const[index.const], uniform=uniform)
            except Exception:
                return Value.unknown(uniform=uniform)
        return Value.unknown(uniform=uniform)

    # -- calls and communication -------------------------------------------

    def _call_arg(self, call: ast.Call, spec: Optional[ArgSpec]) -> Optional[ast.expr]:
        if spec is None:
            return None
        if len(call.args) > spec.index:
            arg = call.args[spec.index]
            return None if isinstance(arg, ast.Starred) else arg
        for kw in call.keywords:
            if kw.arg == spec.keyword:
                return kw.value
        return None

    def _call(self, node: ast.Call) -> Value:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "comm"
            and func.attr in COMM_API
        ):
            # a comm call that is *not* driven by `yield from` never runs
            # (SIM301 flags it); evaluate args for taint only.
            for arg in node.args:
                self._eval(arg)
            return _UNKNOWN
        name = _dotted_name(func)
        arg_values = [self._eval(a) for a in node.args]
        kw_values = [self._eval(kw.value) for kw in node.keywords]
        uniform = all(v.uniform for v in arg_values + kw_values)
        if isinstance(func, (ast.Attribute, ast.Name)):
            uniform = uniform and self._eval_callable_uniform(func)

        short = name.split(".")[-1]
        root = name.split(".")[0]
        if name in ("float", "int"):
            if arg_values and arg_values[0].known:
                try:
                    caster = float if name == "float" else int
                    return Value.of(caster(arg_values[0].const), uniform=uniform)
                except Exception:
                    return Value.unknown(uniform=uniform, nbytes=8)
            return Value.unknown(uniform=uniform, nbytes=8)
        if name in ("bool", "abs", "len", "min", "max", "round", "sum") and arg_values:
            if all(v.known for v in arg_values):
                try:
                    builtin = {"bool": bool, "abs": abs, "len": len, "min": min,
                               "max": max, "round": round, "sum": sum}[name]
                    return Value.of(builtin(*[v.const for v in arg_values]), uniform=uniform)
                except Exception:
                    return Value.unknown(uniform=uniform)
            return Value.unknown(uniform=uniform)
        if name == "range":
            if all(v.known for v in arg_values) and arg_values:
                try:
                    return Value.of(range(*[v.const for v in arg_values]), uniform=uniform)
                except Exception:
                    return Value.unknown(uniform=uniform)
            return Value.unknown(uniform=uniform)
        if root in ("np", "numpy") and short in _NP_SIZED_CTORS and arg_values:
            shape = arg_values[0]
            count: Optional[int] = shape.as_int()
            if count is None and shape.known and isinstance(shape.const, (tuple, list)):
                try:
                    count = 1
                    for d in shape.const:
                        count *= int(d)
                except Exception:
                    count = None
            nbytes = None if count is None or count < 0 else 8 * count
            return Value.unknown(uniform=uniform, nbytes=nbytes)
        if name in ("bytes", "bytearray") and arg_values:
            count = arg_values[0].as_int()
            return Value.unknown(uniform=uniform, nbytes=count if count is not None and count >= 0 else None)
        return Value.unknown(uniform=uniform)

    def _eval_callable_uniform(self, func: ast.expr) -> bool:
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id == "comm":
                return False
            return self.env.get(node.id, Value.unknown(uniform=True)).uniform
        return self._fallback_uniform(node)

    def _yield_from(self, node: ast.YieldFrom) -> Value:
        call = node.value
        if not isinstance(call, ast.Call):
            self._eval(call)
            return _UNKNOWN
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "comm"
            and func.attr in COMM_API
        ):
            return self._comm_call(call, COMM_API[func.attr])
        # A helper generator: invisible to the comm model.  That is fine
        # (one-sided MPB synchronization, timing helpers) unless it was
        # handed the communicator itself, in which case it may send or
        # receive on our behalf and the liveness provers must stand down.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id == "comm":
                self.incomplete.append(
                    f"line {call.lineno}: helper generator receives `comm` "
                    f"(its communication is invisible to the analyzer)"
                )
        self._eval(call)
        return _UNKNOWN

    def _comm_call(self, call: ast.Call, op: CommOp) -> Value:
        for arg in call.args:  # taint/side-effect pass (NamedExpr etc.)
            if isinstance(arg, ast.Starred):
                self._eval(arg.value)
        if op.kind == "local":
            payload_node = self._call_arg(call, op.payload)
            if payload_node is not None:
                self._eval(payload_node)
            if op.name == "set_power":
                return Value.unknown(uniform=False)
            return Value.of(None, uniform=True)

        peer_value = tag_value = root_value = None
        peer_node = self._call_arg(call, op.peer)
        if peer_node is not None:
            peer_value = self._eval(peer_node)
        tag_node = self._call_arg(call, op.tag)
        if tag_node is not None:
            tag_value = self._eval(tag_node)
        root_node = self._call_arg(call, op.root)
        if root_node is not None:
            root_value = self._eval(root_node)
        payload_node = self._call_arg(call, op.payload)
        payload = self._eval(payload_node) if payload_node is not None else None

        peer: Optional[int] = peer_value.as_int() if peer_value is not None else None
        if op.kind == "p2p-send":
            if peer is None:
                # No usable dest: the simulator would model a wildcard
                # send that always completes, silently hiding either a
                # call the runtime rejects (omitted / non-int dest) or
                # a genuinely dynamic destination — abstain in all of
                # these cases, not just the unknown-value one.
                if peer_node is None:
                    self.incomplete.append(
                        f"line {call.lineno}: {op.name} has no statically "
                        f"decodable dest argument (the runtime rejects a "
                        f"send without an integer dest)"
                    )
                elif peer_value is not None and peer_value.known:
                    self.incomplete.append(
                        f"line {call.lineno}: {op.name} dest is not an "
                        f"integer (the runtime rejects this call)"
                    )
                else:
                    self.incomplete.append(
                        f"line {call.lineno}: {op.name} destination is not "
                        f"statically computable"
                    )
            tag: Optional[int] = 0  # the API default
            if tag_node is not None:
                tag = tag_value.as_int() if tag_value is not None else None
        else:
            tag = tag_value.as_int() if tag_value is not None else None

        root: Optional[int] = None
        if op.root is not None:
            root = 0 if root_node is None else (root_value.as_int() if root_value is not None else None)

        bounded = False
        if op.timeout is not None:
            bounded = self._call_arg(call, op.timeout) is not None

        nbytes = _payload_nbytes(payload) if payload is not None else (0 if op.payload else None)
        if op.name == "barrier":
            nbytes = 0

        self.events.append(
            CommEvent(
                op=op.name,
                span=Span.of(call),
                peer=peer,
                tag=tag,
                nbytes=nbytes,
                root=root,
                bounded=bounded,
            )
        )

        # modeled return values (mirrors repro.rcce.collectives semantics)
        if op.name == "recv":
            return Value.unknown(uniform=False)
        if op.name in ("send", "send_async", "barrier"):
            return Value.of(None, uniform=True)
        if op.name in ("bcast", "allreduce"):
            return Value.unknown(uniform=True)
        if op.name in ("reduce", "gather"):
            if root is not None and self.ue != root:
                return Value.of(None, uniform=False)
            return Value.unknown(uniform=False)
        return _UNKNOWN  # pragma: no cover - table is exhaustive


# --------------------------------------------------------------------------
# Path exploration and graph construction
# --------------------------------------------------------------------------


def explore_ue(
    fn: ast.FunctionDef,
    ue: int,
    n_ues: int,
    scan: Optional[_CommScan] = None,
    path_cap: int = MAX_PATHS,
    globals_env: Optional[Dict[str, Value]] = None,
) -> List[UETrace]:
    """Every feasible trace of one UE (bounded DFS over fork decisions)."""
    scan = scan or _CommScan()
    traces: List[UETrace] = []
    stack: List[Tuple[bool, ...]] = [()]
    while stack:
        if len(traces) >= path_cap:
            for tr in traces:
                tr.incomplete.append(
                    f"more than {path_cap} feasible paths for UE {ue} "
                    f"(undecidable branching explosion)"
                )
            break
        script = stack.pop()
        run = _UERun(fn, ue, n_ues, script, scan, globals_env)
        traces.append(run.execute())
        for j in range(len(script), len(run.decisions)):
            flipped = tuple(d.taken for d in run.decisions[:j]) + (not run.decisions[j].taken,)
            stack.append(flipped)
    return traces


def build_graph(
    fn: ast.FunctionDef,
    n_ues: int,
    scan: Optional[_CommScan] = None,
    path_cap: int = MAX_PATHS,
    globals_env: Optional[Dict[str, Value]] = None,
) -> CommGraph:
    """The symbolic communication graph of ``fn`` at one core count."""
    scan = scan or _CommScan()
    return CommGraph(
        n_ues,
        {ue: explore_ue(fn, ue, n_ues, scan, path_cap, globals_env) for ue in range(n_ues)},
    )


def module_constants(tree: ast.Module) -> Dict[str, Value]:
    """Top-level ``NAME = <literal>`` bindings (``RING_TAG = 3`` style).

    Module globals are shared by every UE, hence uniform; only
    literal-evaluable right-hand sides are kept."""
    out: Dict[str, Value] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        try:
            const = ast.literal_eval(value)
        except (ValueError, TypeError, SyntaxError, MemoryError, RecursionError):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                out[t.id] = Value.of(const, uniform=True)
    return out


# --------------------------------------------------------------------------
# Cross-core-count analysis and aggregation
# --------------------------------------------------------------------------


def _format_core_counts(ns: Sequence[int]) -> str:
    ns = sorted(set(ns))
    if len(ns) == 1:
        return f"n_ues={ns[0]}"
    if ns == list(range(ns[0], ns[-1] + 1)):
        return f"n_ues in {ns[0]}..{ns[-1]}"
    shown = ", ".join(str(n) for n in ns[:8])
    more = f" and {len(ns) - 8} more" if len(ns) > 8 else ""
    return f"n_ues in {{{shown}{more}}}"


def analyze_function(
    fn: ast.FunctionDef,
    path: str,
    min_ues: int = DEFAULT_MIN_UES,
    max_ues: int = DEFAULT_MAX_UES,
    select: Optional[Sequence[str]] = None,
    budget: int = MPB_BYTES_PER_CORE,
    globals_env: Optional[Dict[str, Value]] = None,
) -> List[Finding]:
    """Run all three provers on one UE function over a core-count range.

    Per-core-count prover issues are aggregated by their n-independent
    key, so a deadlock that exists at every core count becomes *one*
    finding naming the affected range.
    """
    if min_ues < 1 or max_ues < min_ues:
        raise ValueError(f"need 1 <= min_ues <= max_ues, got {min_ues}..{max_ues}")
    wanted = set(select) if select is not None else None
    for rule_id in wanted or ():
        get_dataflow_rule(rule_id)  # KeyError on unknown ids

    scan = _CommScan()
    merged: Dict[Tuple[object, ...], Tuple[Issue, List[int]]] = {}
    incomplete: Dict[str, List[int]] = {}
    for n in range(min_ues, max_ues + 1):
        graph = build_graph(fn, n, scan, globals_env=globals_env)
        issues: List[Issue] = []
        issues.extend(prove_deadlock(graph, assignment_cap=MAX_ASSIGNMENTS))
        issues.extend(prove_congruence(graph, assignment_cap=MAX_ASSIGNMENTS))
        issues.extend(prove_capacity(graph, budget=budget))
        for issue in issues:
            full_key = (issue.rule, *issue.key)
            if full_key in merged:
                merged[full_key][1].append(n)
            else:
                merged[full_key] = (issue, [n])
        for reason in graph.incomplete_reasons:
            incomplete.setdefault(reason, []).append(n)
        if graph.enumeration_note is not None:
            # set by CommGraph.assignments when its work guard tripped
            # during the prover runs above
            incomplete.setdefault(graph.enumeration_note, []).append(n)

    findings: List[Finding] = []
    for issue, ns in merged.values():
        if wanted is not None and issue.rule not in wanted:
            continue
        rule = DATAFLOW_RULES[issue.rule]
        findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                message=f"in {fn.name!r}: {issue.message} [{_format_core_counts(ns)}]",
                path=path,
                line=issue.span.line or fn.lineno,
                hint=rule.hint,
                col=issue.span.col,
                end_line=issue.span.end_line,
                end_col=issue.span.end_col,
            )
        )
    if wanted is None or "DF500" in wanted:
        rule = DATAFLOW_RULES["DF500"]
        for reason, ns in incomplete.items():
            findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    message=(
                        f"in {fn.name!r}: analysis incomplete — {reason} "
                        f"[{_format_core_counts(ns)}]"
                    ),
                    path=path,
                    line=fn.lineno,
                    hint=rule.hint,
                    col=fn.col_offset + 1,
                )
            )
    return findings


def _comm_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    """Top-level-or-nested functions with a parameter named ``comm``."""
    out: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            names = [a.arg for a in node.args.args + node.args.kwonlyargs + node.args.posonlyargs]
            if "comm" in names:
                out.append(node)
    return out


def analyze_source(
    source: str,
    path: str = "<string>",
    min_ues: int = DEFAULT_MIN_UES,
    max_ues: int = DEFAULT_MAX_UES,
    select: Optional[Sequence[str]] = None,
    function: Optional[str] = None,
) -> List[Finding]:
    """Analyze every UE function in one source text (``function`` narrows
    to a single name; unknown names raise ``ValueError``)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                hint="fix the syntax error first",
            )
        ]
    functions = _comm_functions(tree)
    if function is not None:
        functions = [fn for fn in functions if fn.name == function]
        if not functions:
            raise ValueError(f"{path!r} defines no UE function {function!r} (with a `comm` parameter)")
    consts = module_constants(tree)
    findings: List[Finding] = []
    for fn in functions:
        findings.extend(
            analyze_function(
                fn, path, min_ues=min_ues, max_ues=max_ues, select=select, globals_env=consts
            )
        )
    return findings


def analyze_file(
    path: str,
    min_ues: int = DEFAULT_MIN_UES,
    max_ues: int = DEFAULT_MAX_UES,
    select: Optional[Sequence[str]] = None,
    function: Optional[str] = None,
) -> List[Finding]:
    """Analyze one ``.py`` file (optionally a single function in it)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return analyze_source(
        source, path, min_ues=min_ues, max_ues=max_ues, select=select, function=function
    )


def analyze_paths(
    paths: Iterable[str],
    min_ues: int = DEFAULT_MIN_UES,
    max_ues: int = DEFAULT_MAX_UES,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze files/directories (``file.py:function`` narrows to one
    function), mirroring :func:`repro.analysis.lint.lint_paths`."""
    from .findings import sort_findings
    from .lint import iter_python_files

    findings: List[Finding] = []
    for path in paths:
        if ":" in path and not path.endswith(".py"):
            file_part, _, func = path.rpartition(":")
            findings.extend(
                analyze_file(
                    file_part, min_ues=min_ues, max_ues=max_ues, select=select, function=func
                )
            )
        else:
            for file_path in iter_python_files([path]):
                findings.extend(
                    analyze_file(file_path, min_ues=min_ues, max_ues=max_ues, select=select)
                )
    return sort_findings(findings)
