"""Correctness tooling for RCCE programs and the SCC simulator.

Two cooperating layers (see ``docs/ANALYSIS.md``):

- **Static pass** — :mod:`repro.analysis.lint` walks Python sources with
  an AST rule catalogue (:mod:`repro.analysis.rules`) and flags SPMD
  protocol bugs (unmatched tags, rank-dependent collectives, reserved
  tags, self-sends), determinism hazards (wall-clock time, unseeded
  randomness, mutable defaults) and yield-protocol misuse before a
  single simulated cycle runs.  On top of it,
  :mod:`repro.analysis.dataflow` abstractly interprets each UE program
  into a symbolic communication graph (:mod:`repro.analysis.commgraph`)
  and *proves* liveness properties over a whole range of core counts:
  static deadlocks (DF501), collective congruence (DF502) and MPB
  capacity bounds (DF503), exported as text/JSON/SARIF via ``repro
  analyze`` and cross-validated against the dynamic checkers by
  :mod:`repro.analysis.crosscheck`.

- **Dynamic pass** — :class:`~repro.analysis.runtime_checks.RuntimeChecker`
  hooks into the runtime (deadlock wait-for graphs, MPB overwrite races,
  collective mismatches) and
  :mod:`repro.analysis.determinism` replays runs to verify bit-identical
  schedules.

Both surfaces report structured :class:`~repro.analysis.findings.Finding`
objects and drive the ``repro lint`` / ``repro check`` CLI subcommands.
"""

from .commgraph import CommEvent, CommGraph, Span, UETrace
from .dataflow import (
    DataflowRule,
    all_dataflow_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
)
from .determinism import DeterminismReport, verify_program_determinism
from .findings import (
    Finding,
    Severity,
    findings_from_json,
    findings_to_json,
    format_findings,
)
from .lint import lint_file, lint_paths, lint_source
from .rules import Rule, all_rules, get_rule, register_rule, rule
from .runtime_checks import RuntimeChecker
from .sarif import findings_to_sarif, validate_sarif

__all__ = [
    "Finding",
    "Severity",
    "findings_to_json",
    "findings_from_json",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule",
    "RuntimeChecker",
    "DeterminismReport",
    "verify_program_determinism",
    "CommEvent",
    "CommGraph",
    "Span",
    "UETrace",
    "DataflowRule",
    "all_dataflow_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings_to_sarif",
    "validate_sarif",
]
