"""Correctness tooling for RCCE programs and the SCC simulator.

Two cooperating layers (see ``docs/ANALYSIS.md``):

- **Static pass** — :mod:`repro.analysis.lint` walks Python sources with
  an AST rule catalogue (:mod:`repro.analysis.rules`) and flags SPMD
  protocol bugs (unmatched tags, rank-dependent collectives, reserved
  tags, self-sends), determinism hazards (wall-clock time, unseeded
  randomness, mutable defaults) and yield-protocol misuse before a
  single simulated cycle runs.

- **Dynamic pass** — :class:`~repro.analysis.runtime_checks.RuntimeChecker`
  hooks into the runtime (deadlock wait-for graphs, MPB overwrite races,
  collective mismatches) and
  :mod:`repro.analysis.determinism` replays runs to verify bit-identical
  schedules.

Both surfaces report structured :class:`~repro.analysis.findings.Finding`
objects and drive the ``repro lint`` / ``repro check`` CLI subcommands.
"""

from .determinism import DeterminismReport, verify_program_determinism
from .findings import Finding, Severity, findings_to_json, format_findings
from .lint import lint_file, lint_paths, lint_source
from .rules import Rule, all_rules, get_rule, register_rule, rule
from .runtime_checks import RuntimeChecker

__all__ = [
    "Finding",
    "Severity",
    "findings_to_json",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule",
    "RuntimeChecker",
    "DeterminismReport",
    "verify_program_determinism",
]
