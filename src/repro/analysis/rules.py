"""The static rule catalogue: AST checks for RCCE/simulator programs.

Conventions the checks rely on (followed by every shipped UE program):
the communicator parameter is named ``comm``, communication goes through
``comm.<method>(...)`` and UE bodies are generator functions driven with
``yield from``.  Rules are deliberately conservative — a tag or rank
expression that is not a literal is never guessed at — so the linter is
quiet on correct code and precise on the classic SPMD bugs.

The catalogue is extensible: decorate a checker with :func:`rule` (or
call :func:`register_rule`) and it participates in every lint run.  A
checker receives a :class:`ModuleContext` and yields ``(node, message)``
pairs; the registry attaches rule id/severity/hint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..rcce.collectives import RESERVED_TAG_BASE
from ..rcce.comm_meta import COLLECTIVE_METHODS, COMM_GEN_METHODS
from ..rcce.mpb import MPB_BYTES_PER_CORE
from .findings import Finding, Severity

__all__ = [
    "Rule",
    "ModuleContext",
    "rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "run_rules",
    "COMM_GEN_METHODS",
    "COLLECTIVE_METHODS",
]

#: wall-clock sources that break simulated-time determinism.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: legacy/global RNG entry points (unseeded, process-global state).
_NP_LEGACY_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "random",
        "random_sample",
        "randint",
        "uniform",
        "normal",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "exponential",
    }
)
_STDLIB_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
    }
)

RuleCheck = Callable[["ModuleContext"], Iterator[Tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    name: str
    severity: Severity
    summary: str
    hint: str
    check: RuleCheck = field(repr=False)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(r: Rule) -> Rule:
    """Add a rule to the catalogue (id must be unique)."""
    if r.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {r.id!r}")
    _REGISTRY[r.id] = r
    return r


def rule(id: str, name: str, severity: Severity, summary: str, hint: str) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator form of :func:`register_rule` for checker functions."""

    def wrap(fn: RuleCheck) -> RuleCheck:
        register_rule(Rule(id, name, severity, summary, hint, fn))
        return fn

    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule (KeyError names the unknown id)."""
    if rule_id not in _REGISTRY:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[rule_id]


class ModuleContext:
    """One parsed source file handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree

    def comm_functions(self) -> List[ast.FunctionDef]:
        """Functions with a parameter named ``comm`` — simulated code."""
        out = []
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = [a.arg for a in node.args.args + node.args.kwonlyargs]
                if "comm" in names:
                    out.append(node)
        return out


def run_rules(ctx: ModuleContext, rules: Optional[List[Rule]] = None) -> List[Finding]:
    """Apply rules to one module; returns the findings."""
    findings: List[Finding] = []
    for r in rules if rules is not None else all_rules():
        for node, message in r.check(ctx):
            col_off = getattr(node, "col_offset", None)
            end_col_off = getattr(node, "end_col_offset", None)
            findings.append(
                Finding(
                    rule=r.id,
                    severity=r.severity,
                    message=message,
                    path=ctx.path,
                    line=getattr(node, "lineno", 0) or 0,
                    hint=r.hint,
                    col=0 if col_off is None else int(col_off) + 1,
                    end_line=getattr(node, "end_lineno", 0) or 0,
                    end_col=0 if end_col_off is None else int(end_col_off) + 1,
                )
            )
    return findings


# --------------------------------------------------------------------------
# AST helpers
# --------------------------------------------------------------------------


def _comm_call(node: ast.AST) -> Optional[str]:
    """Method name when ``node`` is a ``comm.<method>(...)`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "comm"
    ):
        return node.func.attr
    return None


def _literal_int(node: Optional[ast.AST]) -> Optional[int]:
    """Integer value of a literal (handles unary minus), else None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_int(node.operand)
        return -inner if inner is not None else None
    return None


def _call_arg(call: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
    """Positional-or-keyword argument of a call, or None if omitted."""
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _send_tag(call: ast.Call) -> Tuple[Optional[int], bool]:
    """(literal tag, is_dynamic) of a ``comm.send(data, dest, tag)`` call."""
    node = _call_arg(call, 2, "tag")
    if node is None:
        return 0, False  # tag defaults to 0
    lit = _literal_int(node)
    return (lit, lit is None)


def _recv_tag(call: ast.Call) -> Tuple[Optional[int], bool]:
    """(literal tag, is_dynamic); None literal means wildcard."""
    node = _call_arg(call, 1, "tag")
    if node is None or (isinstance(node, ast.Constant) and node.value is None):
        return None, False  # wildcard
    lit = _literal_int(node)
    return (lit, lit is None)


def _mentions_comm_ue(node: ast.AST) -> bool:
    """True when the expression reads ``comm.ue`` (rank-dependent)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "ue"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "comm"
        ):
            return True
    return False


def _func_dotted_name(func: ast.AST) -> str:
    """``a.b.c`` rendering of a call target (empty for exotic targets)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _static_payload_bytes(node: ast.AST) -> Optional[int]:
    """Wire size of a payload expression when statically computable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (bytes, bytearray)):
        return len(node.value)
    if isinstance(node, ast.Call):
        name = _func_dotted_name(node.func)
        short = name.split(".")[-1]
        if short in ("zeros", "ones", "empty", "full") and name.split(".")[0] in ("np", "numpy"):
            n = _literal_int(node.args[0]) if node.args else None
            return n * 8 if n is not None else None  # float64 default dtype
        if name in ("bytes", "bytearray"):
            n = _literal_int(node.args[0]) if node.args else None
            return n
    return None


# --------------------------------------------------------------------------
# RCCE protocol rules
# --------------------------------------------------------------------------


@rule(
    "RCCE101",
    "unmatched-tag",
    Severity.ERROR,
    "send/recv (peer, tag) pairs that cannot match across ranks",
    "make the send and recv tags agree (or recv with tag=None to match any)",
)
def check_unmatched_tag(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    """Within one SPMD function, a literal send tag with no literal or
    wildcard recv tag that could match it (and vice versa) deadlocks:
    every rank runs the same code, so the other side must appear."""
    for fn in ctx.comm_functions():
        sends: List[Tuple[ast.Call, Optional[int], bool]] = []
        recvs: List[Tuple[ast.Call, Optional[int], bool]] = []
        for node in ast.walk(fn):
            method = _comm_call(node)
            if method == "send":
                tag, dyn = _send_tag(node)  # type: ignore[arg-type]
                sends.append((node, tag, dyn))  # type: ignore[arg-type]
            elif method == "recv":
                tag, dyn = _recv_tag(node)  # type: ignore[arg-type]
                recvs.append((node, tag, dyn))  # type: ignore[arg-type]
        if not sends or not recvs:
            continue  # producer-only/consumer-only helpers: out of scope
        recv_wild = any(tag is None and not dyn for _, tag, dyn in recvs)
        recv_dyn = any(dyn for _, _, dyn in recvs)
        send_dyn = any(dyn for _, _, dyn in sends)
        recv_tags = {tag for _, tag, dyn in recvs if tag is not None}
        send_tags = {tag for _, tag, dyn in sends if tag is not None}
        if not recv_wild and not recv_dyn:
            for node, tag, dyn in sends:
                if not dyn and tag not in recv_tags:
                    yield node, (
                        f"send with tag={tag} has no matching recv in this SPMD "
                        f"function (recv tags: {sorted(recv_tags)})"
                    )
        if not send_dyn:
            for node, tag, dyn in recvs:
                if tag is not None and not dyn and tag not in send_tags:
                    yield node, (
                        f"recv with tag={tag} has no matching send in this SPMD "
                        f"function (send tags: {sorted(send_tags)})"
                    )


@rule(
    "RCCE102",
    "self-send",
    Severity.ERROR,
    "send addressed to the sender's own rank",
    "rendezvous send-to-self never completes; address a different rank",
)
def check_self_send(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if _comm_call(node) == "send":
                dest = _call_arg(node, 1, "dest")  # type: ignore[arg-type]
                if (
                    isinstance(dest, ast.Attribute)
                    and dest.attr == "ue"
                    and isinstance(dest.value, ast.Name)
                    and dest.value.id == "comm"
                ):
                    yield node, "send to comm.ue blocks forever under rendezvous semantics"


@rule(
    "RCCE103",
    "reserved-tag",
    Severity.ERROR,
    "user message tag in the reserved or negative range",
    f"user tags must satisfy 0 <= tag < {RESERVED_TAG_BASE} (collectives own the rest)",
)
def check_reserved_tag(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            method = _comm_call(node)
            if method == "send":
                tag, _dyn = _send_tag(node)  # type: ignore[arg-type]
            elif method == "recv":
                tag, _dyn = _recv_tag(node)  # type: ignore[arg-type]
            else:
                continue
            if tag is not None and (tag < 0 or tag >= RESERVED_TAG_BASE):
                yield node, (
                    f"tag {tag} is outside the user range "
                    f"[0, {RESERVED_TAG_BASE}): it collides with the "
                    f"collective tag space or is rejected at runtime"
                )


@rule(
    "RCCE110",
    "rank-dependent-collective",
    Severity.ERROR,
    "collective invoked under a rank-dependent branch",
    "collectives must be entered by every rank; hoist the call out of the "
    "comm.ue branch",
)
def check_rank_dependent_collective(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    seen: set[int] = set()
    for fn in ctx.comm_functions():
        for branch in ast.walk(fn):
            if not isinstance(branch, (ast.If, ast.While)):
                continue
            if not _mentions_comm_ue(branch.test):
                continue
            for node in ast.walk(branch):
                method = _comm_call(node)
                if method in COLLECTIVE_METHODS and id(node) not in seen:
                    seen.add(id(node))
                    yield node, (
                        f"comm.{method}() under a branch on comm.ue: ranks that "
                        f"skip the branch never enter the collective (classic "
                        f"SPMD deadlock)"
                    )


@rule(
    "RCCE120",
    "oversized-mpb-payload",
    Severity.ERROR,
    f"payload larger than MPB_BYTES_PER_CORE ({MPB_BYTES_PER_CORE} B) on a "
    "non-chunked path",
    "one-sided put/write cannot exceed the 8 KB per-core MPB; chunk the "
    "transfer or use comm.send (which chunks automatically)",
)
def check_oversized_mpb_payload(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "put" and len(node.args) >= 4:
            payload = node.args[3]
        elif node.func.attr == "write" and len(node.args) == 2:
            payload = node.args[1]
        else:
            continue
        nbytes = _static_payload_bytes(payload)
        if nbytes is not None and nbytes > MPB_BYTES_PER_CORE:
            yield node, (
                f"payload of {nbytes} B exceeds the {MPB_BYTES_PER_CORE} B "
                f"per-core MPB on a non-chunked path"
            )


#: imported names that mark a module as using the fault-tolerant stack.
_FAULT_STACK_NAMES = frozenset(
    {
        "ReliableComm",
        "FailureDetector",
        "FaultPlan",
        "FaultInjector",
        "load_plan",
        "get_plan",
    }
)


def _uses_fault_stack(tree: ast.Module) -> bool:
    """True when the module imports from :mod:`repro.faults`."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if "faults" in module.split("."):
                return True
            if any(alias.name in _FAULT_STACK_NAMES for alias in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any("faults" in alias.name.split(".") for alias in node.names):
                return True
    return False


@rule(
    "RCCE130",
    "unbounded-recv-with-faults",
    Severity.WARNING,
    "unbounded recv in a program that uses the fault-tolerant runtime",
    "a recv with no timeout hangs forever when the peer crashed or the "
    "message was dropped; pass timeout=... or use "
    "repro.faults.reliable.ReliableComm, whose recv is bounded and "
    "retries for you",
)
def check_unbounded_recv_with_faults(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    """Fault-tolerant programs must bound every receive: under an active
    fault plan a message can be dropped and a peer can die, so a recv
    without a deadline turns an injected fault into a deadlock.  Only
    modules that import the fault stack are held to this — fault-free
    programs keep their simpler unbounded receives."""
    if not _uses_fault_stack(ctx.tree):
        return
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "recv":
                continue
            if not (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("comm", "rcomm")
            ):
                continue
            has_timeout = len(node.args) > 2 or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if not has_timeout:
                yield node, (
                    f"{node.func.value.id}.recv(...) has no timeout in a "
                    f"module that uses fault injection: a dropped message "
                    f"or dead peer hangs this rank forever"
                )


# --------------------------------------------------------------------------
# Determinism rules
# --------------------------------------------------------------------------


@rule(
    "DET201",
    "wall-clock-time",
    Severity.ERROR,
    "wall-clock time consulted inside simulated code",
    "use comm.wtime() — simulated time — instead of the host clock",
)
def check_wall_clock(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = _func_dotted_name(node.func)
                if name in WALL_CLOCK_CALLS:
                    yield node, (
                        f"{name}() reads the host clock; two runs of the same "
                        f"simulation would diverge"
                    )


@rule(
    "DET202",
    "unseeded-random",
    Severity.ERROR,
    "unseeded or global-state randomness inside simulated code",
    "pass an explicit seed (np.random.default_rng(seed)) created outside "
    "the UE function",
)
def check_unseeded_random(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = _func_dotted_name(node.func)
            parts = name.split(".")
            if name in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield node, "default_rng() without a seed is nondeterministic"
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in _NP_LEGACY_RANDOM
            ):
                yield node, f"{name}() uses NumPy's process-global RNG state"
            elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
                yield node, f"{name}() uses the stdlib's process-global RNG state"


@rule(
    "DET203",
    "mutable-default",
    Severity.ERROR,
    "mutable default argument on a simulated function",
    "default to None and create the object inside the function body",
)
def check_mutable_default(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    mutable_ctors = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})
    np_ctors = frozenset({"zeros", "ones", "empty", "full", "array"})
    for fn in ctx.comm_functions():
        defaults = list(fn.args.defaults) + [d for d in fn.args.kw_defaults if d is not None]
        for d in defaults:
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp))
            if not bad and isinstance(d, ast.Call):
                name = _func_dotted_name(d.func)
                short = name.split(".")[-1]
                bad = name in mutable_ctors or (
                    short in np_ctors and name.split(".")[0] in ("np", "numpy")
                )
            if bad:
                yield d, (
                    f"function {fn.name!r} has a mutable default evaluated once "
                    f"per process: state leaks across UEs and runs"
                )


# --------------------------------------------------------------------------
# Yield-protocol rules
# --------------------------------------------------------------------------


@rule(
    "SIM301",
    "discarded-comm-generator",
    Severity.ERROR,
    "communication call whose generator is never driven",
    "prefix the call with `yield from` so the simulator executes it",
)
def check_discarded_comm_generator(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if isinstance(node, ast.Expr):
                method = _comm_call(node.value)
                if method in COMM_GEN_METHODS:
                    yield node, (
                        f"comm.{method}(...) builds a generator that is "
                        f"discarded — the operation silently never happens"
                    )


@rule(
    "SIM302",
    "yield-non-event",
    Severity.ERROR,
    "yielding something that is not a SimEvent",
    "UE processes may only `yield` SimEvents; drive communicator "
    "generators with `yield from`",
)
def check_yield_non_event(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in ctx.comm_functions():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Yield):
                continue
            if node.value is None:
                yield node, "bare `yield` delivers None to the engine, not a SimEvent"
                continue
            method = _comm_call(node.value)
            if method in COMM_GEN_METHODS:
                yield node, (
                    f"`yield comm.{method}(...)` hands the engine a generator, "
                    f"not a SimEvent — use `yield from`"
                )
            elif isinstance(node.value, ast.Constant):
                yield node, (
                    f"`yield {ast.unparse(node.value)}` is not a SimEvent; the "
                    f"engine will raise at runtime"
                )
