"""``repro lint`` / ``repro check`` / ``repro analyze`` implementations.

Kept separate from :mod:`repro.cli` (which owns the paper-artifact
commands) so the analysis layer stays importable without the figure
machinery.  Both commands exit non-zero when any ERROR-severity finding
is produced, which is what CI keys off.

The parser *definitions* (``configure_*_parser``) are separate from the
entry points so the unified ``repro`` parser can mount them as real
subparsers while the standalone ``lint_main``/``check_main`` entry
points keep working unchanged.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence, TextIO

from ..cliutil import add_json_flag, add_output_flag, open_output, resolve_format
from .findings import Finding, Severity, findings_to_json, format_findings, has_errors
from .lint import lint_paths
from .rules import all_rules

__all__ = [
    "lint_main",
    "check_main",
    "analyze_main",
    "configure_lint_parser",
    "configure_check_parser",
    "configure_analyze_parser",
    "run_lint",
    "run_check",
    "run_analyze",
]


def configure_lint_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro lint`` arguments to an existing parser."""
    p.add_argument("paths", nargs="*", help="files or directories to lint")
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    add_json_flag(p)
    add_output_flag(p)


def build_lint_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically lint RCCE/simulator programs for SPMD protocol "
        "bugs and determinism hazards.",
    )
    configure_lint_parser(p)
    return p


def run_lint(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro lint`` from a parsed namespace."""
    with open_output(args, out) as stream:
        if args.list_rules:
            for r in all_rules():
                print(
                    f"{r.id}  [{r.severity.value:7s}]  {r.name}: {r.summary}",
                    file=stream,
                )
            return 0
        if not args.paths:
            raise SystemExit(
                "repro lint: at least one path is required (or --list-rules)"
            )
        select = [s.strip() for s in args.select.split(",") if s.strip()] or None
        try:
            findings = lint_paths(args.paths, select=select)
        except (FileNotFoundError, KeyError) as exc:
            raise SystemExit(f"repro lint: {exc}") from exc
        if resolve_format(args) == "json":
            print(findings_to_json(findings), file=stream)
        else:
            print(format_findings(findings), file=stream)
        return 1 if has_errors(findings) else 0


def lint_main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro lint``; returns a process exit code."""
    return run_lint(build_lint_parser().parse_args(argv), out=out)


def configure_check_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro check`` arguments to an existing parser."""
    p.add_argument(
        "--program",
        type=str,
        default="",
        help="check one program given as 'file.py:function' instead of the "
        "built-in battery",
    )
    p.add_argument(
        "--ues", type=int, default=4, help="number of UEs for --program (default 4)"
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p.add_argument(
        "--no-determinism",
        action="store_true",
        help="skip the replay-based determinism verification",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_check_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro check",
        description="Run RCCE programs under the dynamic race/deadlock/"
        "determinism checkers.",
    )
    configure_check_parser(p)
    return p


def run_check(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro check`` from a parsed namespace."""
    from .check import check_battery, load_program, run_checked

    verify = not args.no_determinism
    if args.program:
        if args.ues < 1:
            raise SystemExit(f"--ues must be >= 1, got {args.ues}")
        try:
            name, fn = load_program(args.program)
        except (ValueError, OSError, AttributeError, TypeError) as exc:
            raise SystemExit(f"repro check: {exc}") from exc
        results = [run_checked(name, fn, args.ues, verify_determinism=verify)]
    else:
        results = check_battery(verify_determinism=verify)

    all_findings: List[Finding] = []
    with open_output(args, out) as stream:
        if resolve_format(args) == "json":
            payload = []
            for r in results:
                payload.append(
                    {
                        "program": r.name,
                        "completed": r.completed,
                        "deterministic": r.deterministic,
                        "ok": r.ok,
                        "findings": json.loads(findings_to_json(r.findings)),
                    }
                )
                all_findings.extend(r.findings)
            print(json.dumps(payload, indent=2), file=stream)
        else:
            for r in results:
                status = "ok" if r.ok else "FAIL"
                det = (
                    ""
                    if r.deterministic is None
                    else f", deterministic={'yes' if r.deterministic else 'NO'}"
                )
                print(
                    f"[{status}] {r.name}: completed={'yes' if r.completed else 'NO'}{det}",
                    file=stream,
                )
                for f in r.findings:
                    print(f"    {f}", file=stream)
                all_findings.extend(r.findings)
            n_fail = sum(1 for r in results if not r.ok)
            print(
                f"{len(results)} program(s) checked, {n_fail} failing", file=stream
            )
    failed = any(not r.ok for r in results) or any(
        f.severity is Severity.ERROR for f in all_findings
    )
    return 1 if failed else 0


def check_main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``repro check``; returns a process exit code."""
    return run_check(build_check_parser().parse_args(argv), out=out)


def _parse_ues_range(text: str) -> tuple[int, int]:
    """``'2:16'`` (or a single ``'8'``) -> (min_ues, max_ues)."""
    try:
        if ":" in text:
            lo_s, _, hi_s = text.partition(":")
            lo, hi = int(lo_s), int(hi_s)
        else:
            lo = hi = int(text)
    except ValueError as exc:
        raise SystemExit(
            f"repro analyze: --ues-range must be 'MIN:MAX' or 'N', got {text!r}"
        ) from exc
    if lo < 1 or hi < lo:
        raise SystemExit(
            f"repro analyze: need 1 <= MIN <= MAX in --ues-range, got {text!r}"
        )
    return lo, hi


def configure_analyze_parser(p: argparse.ArgumentParser) -> None:
    """Add the ``repro analyze`` arguments to an existing parser."""
    p.add_argument(
        "paths",
        nargs="*",
        help="files, directories, or 'file.py:function' specs to analyze",
    )
    p.add_argument(
        "--ues-range",
        type=str,
        default="2:16",
        metavar="MIN:MAX",
        help="core-count range the provers must hold over (default 2:16)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    p.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated DF rule ids to report (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the DF rule catalogue and exit"
    )
    p.add_argument(
        "--compare-runtime",
        action="store_true",
        help="also execute each 'file.py:function' spec under the RT80x "
        "runtime checkers and fail on static/dynamic disagreement",
    )
    p.add_argument(
        "--ues",
        type=int,
        default=4,
        help="number of UEs for the --compare-runtime execution (default 4)",
    )
    add_json_flag(p)
    add_output_flag(p)


def build_analyze_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro analyze",
        description="Symbolically analyze RCCE programs: static deadlock "
        "proofs (DF501), collective congruence (DF502) and MPB capacity "
        "bounds (DF503) over a range of core counts.",
    )
    configure_analyze_parser(p)
    return p


def run_analyze(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    """Execute ``repro analyze`` from a parsed namespace."""
    from .crosscheck import crosscheck_findings, crosscheck_program
    from .dataflow import all_dataflow_rules, analyze_paths
    from .sarif import sarif_to_json

    min_ues, max_ues = _parse_ues_range(args.ues_range)
    select = [s.strip() for s in args.select.split(",") if s.strip()] or None
    fmt = resolve_format(args)
    with open_output(args, out) as stream:
        if args.list_rules:
            for r in all_dataflow_rules():
                print(
                    f"{r.id}  [{r.severity.value:7s}]  {r.name}: {r.summary}",
                    file=stream,
                )
            return 0
        if not args.paths:
            raise SystemExit(
                "repro analyze: at least one path is required (or --list-rules)"
            )
        if args.compare_runtime:
            if fmt == "sarif":
                raise SystemExit(
                    "repro analyze: --compare-runtime reports mixed static/"
                    "runtime findings; use --format text or json"
                )
            if args.ues < 1:
                raise SystemExit(f"--ues must be >= 1, got {args.ues}")
            findings: List[Finding] = []
            disagreed = False
            for spec in args.paths:
                try:
                    result = crosscheck_program(
                        spec, args.ues, min_ues=min_ues, max_ues=max_ues
                    )
                except (ValueError, OSError, AttributeError, TypeError) as exc:
                    raise SystemExit(f"repro analyze: {exc}") from exc
                disagreed = disagreed or not result.agree
                findings.extend(crosscheck_findings(result))
                if fmt == "text":
                    print(result.describe(), file=stream)
            if fmt == "json":
                print(findings_to_json(findings), file=stream)
            else:
                print(format_findings(findings), file=stream)
            return 1 if disagreed or has_errors(findings) else 0
        try:
            findings = analyze_paths(
                args.paths, min_ues=min_ues, max_ues=max_ues, select=select
            )
        except (FileNotFoundError, KeyError, ValueError) as exc:
            raise SystemExit(f"repro analyze: {exc}") from exc
        if fmt == "sarif":
            print(sarif_to_json(findings), file=stream)
        elif fmt == "json":
            print(findings_to_json(findings), file=stream)
        else:
            print(format_findings(findings), file=stream)
        return 1 if has_errors(findings) else 0


def analyze_main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    """Entry point for ``repro analyze``; returns a process exit code."""
    return run_analyze(build_analyze_parser().parse_args(argv), out=out)
