"""Determinism verification: replay a run and diff the schedules.

The engine's contract is that two runs with the same inputs produce
bit-identical (time, seq, event-name) dispatch schedules.  Anything that
consults host state — wall-clock time, unseeded RNGs, dict ordering of
freshly hashed objects — breaks that silently.  This module executes a
UE program twice on fresh runtimes with trace recording on and reports
the first point where the schedules diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..scc.chip import CONF0, SCCConfig
from .findings import Finding, Severity

__all__ = ["DeterminismReport", "verify_program_determinism", "diff_traces"]

Trace = List[Tuple[float, int, str]]


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a replay comparison."""

    deterministic: bool
    events_compared: int
    divergence_index: Optional[int] = None
    first_difference: str = ""
    findings: List[Finding] = field(default_factory=list)


def diff_traces(a: Trace, b: Trace) -> Tuple[Optional[int], str]:
    """Index and description of the first divergence (None if identical)."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i, f"run 1 dispatched {ea!r}, run 2 dispatched {eb!r}"
    if len(a) != len(b):
        i = min(len(a), len(b))
        longer = "run 1" if len(a) > len(b) else "run 2"
        return i, f"{longer} dispatched {abs(len(a) - len(b))} extra event(s)"
    return None, ""


def verify_program_determinism(
    fn: Callable[..., Any],
    n_ues: int,
    args_factory: Optional[Callable[[], Sequence[Any]]] = None,
    config: SCCConfig = CONF0,
    core_map: Optional[Sequence[int]] = None,
    runs: int = 2,
    fault_plan: Optional[Any] = None,
) -> DeterminismReport:
    """Run ``fn`` on fresh runtimes ``runs`` times and diff the schedules.

    ``args_factory`` rebuilds the program's extra arguments for every
    run (mutable containers like result dicts must not be shared between
    replays, or the replay itself would perturb the program).

    With a ``fault_plan`` the replay runs under fault injection: the
    determinism contract extends to faulty runs — the same plan must
    produce the identical dispatch schedule *and* the identical injected
    fault schedule (DET900 covers both).
    """
    from ..core.mapping import distance_reduction_mapping
    from ..rcce.runtime import RCCERuntime

    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    cores = list(core_map) if core_map is not None else distance_reduction_mapping(n_ues)

    traces: List[Trace] = []
    fault_schedules: List[List[Tuple]] = []
    for _ in range(runs):
        rt = RCCERuntime(
            cores, config=config, record_trace=True, checks=False, fault_plan=fault_plan
        )
        extra = list(args_factory()) if args_factory is not None else []
        rt.run(fn, *extra)
        traces.append(list(rt.sim.trace))
        if rt.fault_injector is not None:
            fault_schedules.append(rt.fault_injector.schedule_signature())

    for i, other in enumerate(fault_schedules[1:], start=1):
        if other != fault_schedules[0]:
            diverge = next(
                (
                    j
                    for j, (ea, eb) in enumerate(zip(fault_schedules[0], other))
                    if ea != eb
                ),
                min(len(fault_schedules[0]), len(other)),
            )
            description = (
                f"injected fault schedules differ between run 1 and run {i + 1} "
                f"at fault #{diverge}"
            )
            finding = Finding(
                rule="DET900",
                severity=Severity.ERROR,
                message=f"nondeterministic fault injection: {description}",
                hint=(
                    "fault randomness must come only from the plan's seeded "
                    "streams; check for host-state use in injector hooks"
                ),
            )
            return DeterminismReport(
                deterministic=False,
                events_compared=diverge,
                divergence_index=diverge,
                first_difference=description,
                findings=[finding],
            )

    reference = traces[0]
    for other in traces[1:]:
        index, description = diff_traces(reference, other)
        if index is not None:
            finding = Finding(
                rule="DET900",
                severity=Severity.ERROR,
                message=(
                    f"nondeterministic schedule: first divergence at event "
                    f"#{index}: {description}"
                ),
                hint=(
                    "remove wall-clock/unseeded-random/host-state dependencies "
                    "from the UE program (run `repro lint` on it)"
                ),
            )
            return DeterminismReport(
                deterministic=False,
                events_compared=index,
                divergence_index=index,
                first_difference=description,
                findings=[finding],
            )
    return DeterminismReport(deterministic=True, events_compared=len(reference))
