"""Structured diagnostics shared by the static linter and runtime checkers.

Every rule violation — whether found by AST inspection, the symbolic
dataflow analyzer or observed during a simulation — becomes one
:class:`Finding` carrying a rule id, severity, a stable source span
(line, column, end line, end column — all 1-based, 0 = unknown) and a
fix hint, so tooling (CLI, CI, SARIF export, tests) can consume every
pass uniformly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the CLI run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic: what rule fired, where, and how to fix it."""

    rule: str                 #: rule id, e.g. "RCCE110"
    severity: Severity
    message: str              #: one-line description of the defect
    path: str = "<runtime>"   #: source file, or "<runtime>" for dynamic findings
    line: int = 0             #: 1-based start line (0 = not applicable)
    hint: str = ""            #: suggested fix
    col: int = 0              #: 1-based start column (0 = unknown)
    end_line: int = 0         #: 1-based end line (0 = unknown)
    end_col: int = 0          #: 1-based end column, exclusive (0 = unknown)

    @property
    def location(self) -> str:
        """``file:line[:col]`` rendering (file only when line unknown)."""
        if not self.line:
            return self.path
        if self.col:
            return f"{self.path}:{self.line}:{self.col}"
        return f"{self.path}:{self.line}"

    @property
    def has_span(self) -> bool:
        """True when the finding points at a concrete source region."""
        return self.line > 0 and self.path != "<runtime>"

    def __str__(self) -> str:
        text = f"{self.location}: {self.severity.value}: {self.rule}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (severity as its string value)."""
        d: Dict[str, Any] = {f.name: getattr(self, f.name) for f in fields(self)}
        d["severity"] = self.severity.value
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        known = {f.name for f in fields(cls)}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown Finding fields: {sorted(extra)}")
        payload = dict(d)
        payload["severity"] = Severity(payload["severity"])
        return cls(**payload)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable order: by file, then line, then column, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def format_findings(findings: Iterable[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    ordered = sort_findings(findings)
    lines = [str(f) for f in ordered]
    n_err = sum(1 for f in ordered if f.severity is Severity.ERROR)
    n_warn = sum(1 for f in ordered if f.severity is Severity.WARNING)
    lines.append(
        f"{len(ordered)} finding(s): {n_err} error(s), {n_warn} warning(s)"
        if ordered
        else "no findings"
    )
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """JSON rendering (a list of objects) for machine consumers."""
    return json.dumps([f.to_dict() for f in sort_findings(findings)], indent=2)


def findings_from_json(text: str) -> List[Finding]:
    """Inverse of :func:`findings_to_json` (round-trip guaranteed)."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError(f"expected a JSON list of findings, got {type(payload).__name__}")
    return [Finding.from_dict(d) for d in payload]


def has_errors(findings: Iterable[Finding]) -> bool:
    """True when any finding is ERROR severity (CLI exit-code driver)."""
    return any(f.severity is Severity.ERROR for f in findings)
