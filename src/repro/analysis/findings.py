"""Structured diagnostics shared by the static linter and runtime checkers.

Every rule violation — whether found by AST inspection or observed
during a simulation — becomes one :class:`Finding` carrying a rule id,
severity, location and a fix hint, so tooling (CLI, CI, tests) can
consume both passes uniformly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the CLI run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic: what rule fired, where, and how to fix it."""

    rule: str                 #: rule id, e.g. "RCCE110"
    severity: Severity
    message: str              #: one-line description of the defect
    path: str = "<runtime>"   #: source file, or "<runtime>" for dynamic findings
    line: int = 0             #: 1-based line number (0 = not applicable)
    hint: str = ""            #: suggested fix

    @property
    def location(self) -> str:
        """``file:line`` rendering (file only when line unknown)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def __str__(self) -> str:
        text = f"{self.location}: {self.severity.value}: {self.rule}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def format_findings(findings: Iterable[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    ordered = sort_findings(findings)
    lines = [str(f) for f in ordered]
    n_err = sum(1 for f in ordered if f.severity is Severity.ERROR)
    n_warn = sum(1 for f in ordered if f.severity is Severity.WARNING)
    lines.append(
        f"{len(ordered)} finding(s): {n_err} error(s), {n_warn} warning(s)"
        if ordered
        else "no findings"
    )
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """JSON rendering (a list of objects) for machine consumers."""
    payload = []
    for f in sort_findings(findings):
        d = asdict(f)
        d["severity"] = f.severity.value
        payload.append(d)
    return json.dumps(payload, indent=2)


def has_errors(findings: Iterable[Finding]) -> bool:
    """True when any finding is ERROR severity (CLI exit-code driver)."""
    return any(f.severity is Severity.ERROR for f in findings)
