"""Symbolic per-core communication graphs and the DF50x provers.

The dataflow interpreter (:mod:`repro.analysis.dataflow`) reduces one
UE program at one core count to a :class:`CommGraph`: for every UE, the
set of feasible ordered traces of :class:`CommEvent` (sends, receives,
collectives) it can execute.  This module owns that data model and the
three provers that run on top of it:

- :func:`prove_deadlock` (**DF501**) replays the traces under the exact
  rendezvous semantics of the runtime (buffered deposit, consume-ack,
  FIFO matching, epoch-synchronized collectives) and reports wait-for
  cycles, orphaned receives/sends and orphaned collectives — the hangs
  ``RT801`` only sees on schedules that actually execute;
- :func:`prove_congruence` (**DF502**) checks that every UE, on every
  feasible branch assignment, executes the same collective sequence
  (kind, root, and — for reduce/allreduce — contribution size);
- :func:`prove_capacity` (**DF503**) bounds each edge's payload against
  the 8 KB per-core MPB budget.

Provers return :class:`Issue` records keyed for cross-core-count
aggregation; :mod:`repro.analysis.dataflow` turns them into
:class:`~repro.analysis.findings.Finding` objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..rcce.comm_meta import COMM_API
from ..rcce.mpb import MPB_BYTES_PER_CORE

__all__ = [
    "Span",
    "CommEvent",
    "Decision",
    "UETrace",
    "CommGraph",
    "Issue",
    "ScheduleResult",
    "simulate_schedule",
    "prove_deadlock",
    "prove_congruence",
    "prove_capacity",
]

#: collectives whose per-rank contribution must be size-consistent
#: (mirrors the runtime checker's RT805 scope).
SIZE_CHECKED_COLLECTIVES = frozenset({"reduce", "allreduce"})

#: default work guard for assignment enumeration: candidate traces
#: examined before :meth:`CommGraph.assignments` gives up and records
#: an incomplete note (consistent-prefix backtracking makes the guard
#: bind only on pathological fork structures).
ENUM_WORK_FLOOR = 20_000


@dataclass(frozen=True)
class Span:
    """1-based source region (0 = unknown), matching Finding fields."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0

    @classmethod
    def of(cls, node: ast.AST) -> "Span":
        """Span of an AST node (columns converted to 1-based)."""
        line = int(getattr(node, "lineno", 0) or 0)
        col_off = getattr(node, "col_offset", None)
        end_line = int(getattr(node, "end_lineno", 0) or 0)
        end_col_off = getattr(node, "end_col_offset", None)
        return cls(
            line=line,
            col=0 if col_off is None else int(col_off) + 1,
            end_line=end_line,
            end_col=0 if end_col_off is None else int(end_col_off) + 1,
        )


@dataclass(frozen=True)
class CommEvent:
    """One symbolic communication operation executed by one UE.

    ``peer``/``tag``/``root``/``nbytes`` are ``None`` when statically
    unknown (treated as wildcards by the schedule simulator — the
    permissive direction, so unknowns can only hide bugs, never invent
    them).
    """

    op: str                       #: method name from the comm API table
    span: Span
    peer: Optional[int] = None    #: dest (sends) / source (recvs)
    tag: Optional[int] = None
    nbytes: Optional[int] = None  #: payload wire-size upper bound
    root: Optional[int] = None
    bounded: bool = False         #: recv with a timeout (cannot hang)

    @property
    def kind(self) -> str:
        return COMM_API[self.op].kind

    def describe(self) -> str:
        """Short human rendering used in finding messages."""
        if self.kind == "p2p-send":
            peer = "?" if self.peer is None else str(self.peer)
            tag = "?" if self.tag is None else str(self.tag)
            return f"{self.op}(dest={peer}, tag={tag})"
        if self.kind == "p2p-recv":
            peer = "*" if self.peer is None else str(self.peer)
            tag = "*" if self.tag is None else str(self.tag)
            return f"recv(source={peer}, tag={tag})"
        if self.root is not None:
            return f"{self.op}(root={self.root})"
        return f"{self.op}()"


@dataclass(frozen=True)
class Decision:
    """One fork taken while interpreting a UE (an undecidable branch)."""

    key: Tuple[int, ...]  #: (line, col, occurrence) of the branch site
    taken: bool
    uniform: bool         #: condition provably identical on every UE?


@dataclass
class UETrace:
    """One feasible execution of one UE: its comm events in order."""

    ue: int
    events: List[CommEvent] = field(default_factory=list)
    decisions: Tuple[Decision, ...] = ()
    incomplete: List[str] = field(default_factory=list)

    def collective_signature(self) -> Tuple[Tuple[str, Optional[int], Optional[int]], ...]:
        """(kind, root, size-checked nbytes) of each collective, in order."""
        out: List[Tuple[str, Optional[int], Optional[int]]] = []
        for ev in self.events:
            if ev.kind == "collective":
                nbytes = ev.nbytes if ev.op in SIZE_CHECKED_COLLECTIVES else None
                out.append((ev.op, ev.root, nbytes))
        return tuple(out)


class CommGraph:
    """All feasible symbolic traces of one program at one core count."""

    def __init__(self, n_ues: int, traces: Dict[int, List[UETrace]]) -> None:
        if n_ues < 1:
            raise ValueError(f"n_ues must be >= 1, got {n_ues}")
        for ue in range(n_ues):
            if not traces.get(ue):
                raise ValueError(f"UE {ue} has no feasible trace")
        self.n_ues = n_ues
        self.traces = traces
        #: set by :meth:`assignments` when its work guard trips; callers
        #: report it like a trace-level incompleteness reason (DF500).
        self.enumeration_note: Optional[str] = None

    @property
    def incomplete_reasons(self) -> List[str]:
        """Deduplicated reasons any trace's analysis was incomplete."""
        seen: Set[str] = set()
        out: List[str] = []
        for variants in self.traces.values():
            for tr in variants:
                for reason in tr.incomplete:
                    if reason not in seen:
                        seen.add(reason)
                        out.append(reason)
        return out

    def assignments(
        self, cap: int = 256, work_cap: Optional[int] = None
    ) -> Iterator[List[UETrace]]:
        """Feasible global assignments: one trace per UE, consistent on
        uniform decisions (every UE branches the same way on a condition
        that is provably rank-uniform).  Yields at most ``cap``.

        The enumeration backtracks over per-UE trace choices, merging
        the uniform-decision vector incrementally and discarding
        inconsistent prefixes immediately — with ``k`` uniform
        comm-guarding branches the work scales with the number of
        *consistent* assignments (≈ 2^k, capped), not with
        ``traces ** n_ues`` as a filtered cross product would.  A work
        guard bounds pathological fork structures: when it trips,
        iteration stops and :attr:`enumeration_note` records a reason
        so callers downgrade the analysis to DF500-incomplete.
        """
        if work_cap is None:
            work_cap = ENUM_WORK_FLOOR
        state = {"yielded": 0, "work": 0}
        chosen: List[UETrace] = []

        def merge(
            merged: Dict[Tuple[int, ...], bool], tr: UETrace
        ) -> Optional[Dict[Tuple[int, ...], bool]]:
            """``merged`` extended with ``tr``'s uniform decisions, or
            None on conflict (copy-on-write: untouched dicts are shared)."""
            out = merged
            for d in tr.decisions:
                if not d.uniform:
                    continue
                prev = out.get(d.key)
                if prev is None:
                    if out is merged:
                        out = dict(merged)
                    out[d.key] = d.taken
                elif prev != d.taken:
                    return None
            return out

        def walk(ue: int, merged: Dict[Tuple[int, ...], bool]) -> Iterator[List[UETrace]]:
            if ue == self.n_ues:
                state["yielded"] += 1
                yield list(chosen)
                return
            for tr in self.traces[ue]:
                state["work"] += 1
                if state["work"] > work_cap:
                    self.enumeration_note = (
                        f"assignment enumeration abandoned after examining "
                        f"{work_cap} candidate traces (pathological "
                        f"undecidable-branch structure)"
                    )
                    return
                extended = merge(merged, tr)
                if extended is None:
                    continue
                chosen.append(tr)
                yield from walk(ue + 1, extended)
                chosen.pop()
                if state["yielded"] >= cap or self.enumeration_note is not None:
                    return

        yield from walk(0, {})

    def edges(self) -> List[Tuple[int, Optional[int], Optional[int], Optional[int]]]:
        """Aggregated message edges ``(src, dst, tag, nbytes)`` over all
        traces (collectives excluded; dst None = unknown)."""
        out: List[Tuple[int, Optional[int], Optional[int], Optional[int]]] = []
        seen: Set[Tuple[int, Optional[int], Optional[int], Optional[int]]] = set()
        for ue in range(self.n_ues):
            for tr in self.traces[ue]:
                for ev in tr.events:
                    if ev.kind != "p2p-send":
                        continue
                    edge = (ue, ev.peer, ev.tag, ev.nbytes)
                    if edge not in seen:
                        seen.add(edge)
                        out.append(edge)
        return out


@dataclass(frozen=True)
class Issue:
    """One raw prover result at one core count (pre-aggregation)."""

    rule: str
    span: Span
    key: Tuple[object, ...]  #: n-independent identity for aggregation
    message: str             #: n-free core of the diagnostic
    detail: str = ""         #: n-specific exemplar appended once


# --------------------------------------------------------------------------
# DF501: the rendezvous schedule simulator
# --------------------------------------------------------------------------


@dataclass
class _Msg:
    src: int
    tag: Optional[int]
    rendezvous: bool
    consumed: bool = False
    event: Optional[CommEvent] = None


@dataclass
class ScheduleResult:
    """Outcome of replaying one global trace assignment."""

    completed: bool
    #: ue -> event it is stuck on (empty when completed)
    blocked: Dict[int, CommEvent] = field(default_factory=dict)
    #: wait-for cycle among blocked UEs, if one exists
    cycle: List[int] = field(default_factory=list)
    #: crash diagnostics (invalid peers) that abort the job outright
    crashes: List[Tuple[int, CommEvent, str]] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return bool(self.blocked) and not self.completed


def _validate_events(n_ues: int, assignment: Sequence[UETrace]) -> List[Tuple[int, CommEvent, str]]:
    """Peers/roots that crash the runtime immediately (ValueError)."""
    crashes: List[Tuple[int, CommEvent, str]] = []
    for tr in assignment:
        for ev in tr.events:
            if ev.kind == "p2p-send" and ev.peer is not None:
                if ev.peer == tr.ue:
                    crashes.append(
                        (tr.ue, ev, f"UE {tr.ue} sends to itself (rendezvous self-send)")
                    )
                elif not 0 <= ev.peer < n_ues:
                    crashes.append(
                        (tr.ue, ev, f"UE {tr.ue} sends to dest {ev.peer}, outside [0, {n_ues})")
                    )
            elif ev.kind == "p2p-recv" and ev.peer is not None:
                if not 0 <= ev.peer < n_ues:
                    crashes.append(
                        (tr.ue, ev, f"UE {tr.ue} receives from source {ev.peer}, outside [0, {n_ues})")
                    )
            elif ev.kind == "collective" and ev.root is not None:
                if not 0 <= ev.root < n_ues:
                    crashes.append(
                        (tr.ue, ev, f"UE {tr.ue} enters {ev.op} with root {ev.root}, outside [0, {n_ues})")
                    )
    return crashes


def simulate_schedule(n_ues: int, assignment: Sequence[UETrace]) -> ScheduleResult:
    """Replay one global assignment under the runtime's exact semantics.

    Models what :class:`~repro.rcce.runtime.RCCERuntime` does: a
    rendezvous ``send`` deposits its envelope into the destination
    mailbox *immediately* (after transfer time) and then blocks until
    the receiver consumes it; ``send_async`` deposits and continues;
    ``recv`` consumes the first matching envelope in FIFO order (tag or
    source ``None`` matches anything); a timed recv never blocks; and a
    collective completes only when **all** ``n_ues`` ranks have entered
    one.  Runs to quiescence; any UE still blocked then is deadlocked
    for every real schedule, because the replay is maximally permissive
    (wildcard matching, earliest possible delivery).
    """
    crashes = _validate_events(n_ues, assignment)
    if crashes:
        return ScheduleResult(completed=False, crashes=crashes)

    events = {tr.ue: tr.events for tr in assignment}
    pc = {ue: 0 for ue in range(n_ues)}
    #: mailbox per UE, FIFO of deposited messages
    mailbox: Dict[int, List[_Msg]] = {ue: [] for ue in range(n_ues)}
    #: rendezvous sends blocked on their ack: ue -> message
    awaiting_ack: Dict[int, _Msg] = {}

    def finished(ue: int) -> bool:
        return pc[ue] >= len(events[ue]) and ue not in awaiting_ack

    def try_recv(ue: int, ev: CommEvent) -> bool:
        for msg in mailbox[ue]:
            if msg.consumed:
                continue
            if ev.peer is not None and msg.src != ev.peer:
                continue
            if ev.tag is not None and msg.tag is not None and msg.tag != ev.tag:
                continue
            msg.consumed = True
            if msg.rendezvous and awaiting_ack.get(msg.src) is msg:
                del awaiting_ack[msg.src]
            return True
        return False

    def step(ue: int) -> bool:
        """Advance one UE by at most one event; True on progress."""
        if ue in awaiting_ack:
            return False  # blocked in a rendezvous send
        if pc[ue] >= len(events[ue]):
            return False
        ev = events[ue][pc[ue]]
        if ev.kind == "p2p-send":
            if ev.peer is None:
                pc[ue] += 1  # unknown dest: modeled as completing (DF500)
                return True
            msg = _Msg(src=ue, tag=ev.tag, rendezvous=(ev.op == "send"), event=ev)
            mailbox[ev.peer].append(msg)
            if ev.op == "send":
                awaiting_ack[ue] = msg
            pc[ue] += 1
            return True
        if ev.kind == "p2p-recv":
            if try_recv(ue, ev) or ev.bounded:
                pc[ue] += 1  # matched, or timed out without a match
                return True
            return False
        if ev.kind == "collective":
            return False  # released globally by the epoch rule below
        pc[ue] += 1  # local op (not normally recorded, but harmless)
        return True

    guard = sum(len(e) for e in events.values()) * (n_ues + 2) + n_ues + 8
    for _round in range(guard):
        progress = False
        for ue in range(n_ues):
            while step(ue):
                progress = True
        if all(finished(ue) for ue in range(n_ues)):
            return ScheduleResult(completed=True)
        if progress:
            continue
        # p2p-quiescent: release a collective epoch iff EVERY rank is
        # parked at a collective (the runtime's trees span all ranks).
        at_collective = [
            ue
            for ue in range(n_ues)
            if ue not in awaiting_ack
            and pc[ue] < len(events[ue])
            and events[ue][pc[ue]].kind == "collective"
        ]
        if len(at_collective) == n_ues:
            for ue in at_collective:
                pc[ue] += 1
            continue
        break  # true quiescence: deadlock
    blocked: Dict[int, CommEvent] = {}
    for ue in range(n_ues):
        if finished(ue):
            continue
        if ue in awaiting_ack:
            msg = awaiting_ack[ue]
            blocked[ue] = msg.event if msg.event is not None else events[ue][pc[ue] - 1]
        elif pc[ue] < len(events[ue]):
            blocked[ue] = events[ue][pc[ue]]
    return ScheduleResult(completed=False, blocked=blocked, cycle=_find_cycle(blocked))


def _find_cycle(blocked: Dict[int, CommEvent]) -> List[int]:
    """A wait-for cycle among blocked UEs (empty when none exists)."""
    graph: Dict[int, int] = {}
    for ue, ev in blocked.items():
        if ev.peer is not None and ev.peer in blocked:
            graph[ue] = ev.peer
    for start in sorted(graph):
        seen: List[int] = []
        node = start
        while node in graph and node not in seen:
            seen.append(node)
            node = graph[node]
        if node in seen:
            return seen[seen.index(node):]
    return []


def _describe_blockage(result: ScheduleResult, n_ues: int) -> Tuple[Tuple[object, ...], str, Span]:
    """(aggregation key, message, span) for one deadlocked replay."""
    if result.crashes:
        ue, ev, why = result.crashes[0]
        return (("crash", ev.span, ev.op), f"{why} — the runtime rejects this and the job dies", ev.span)
    if result.cycle:
        cyc = result.cycle
        shown = cyc[:6]
        parts = [f"UE {u}" for u in shown]
        if len(cyc) > 6:
            parts.append("...")
        parts.append(f"UE {cyc[0]}")
        chain = " -> ".join(parts)
        ev = result.blocked[cyc[0]]
        ops = ", ".join(f"UE {u}: {result.blocked[u].describe()}" for u in shown)
        return (
            # keyed by the *distinct* cycle sites: the same ring deadlock
            # has a longer cycle at every n but identical source spans
            ("cycle", tuple(sorted({result.blocked[u].span for u in cyc},
                                   key=lambda s: (s.line, s.col)))),
            f"rendezvous wait-for cycle of {len(cyc)} UE(s): {chain} ({ops})",
            ev.span,
        )
    items = sorted(result.blocked.items())
    ue, ev = items[0]
    ops = "; ".join(f"UE {u}: {e.describe()}" for u, e in items[:4])
    more = f" (+{len(items) - 4} more)" if len(items) > 4 else ""
    finished = n_ues - len(items)
    kind = "orphaned collective" if ev.kind == "collective" else "orphaned wait"
    return (
        # keyed by the *distinct* blocked sites so the same hang shape
        # aggregates across core counts (the UE count varies with n)
        (kind, tuple(sorted({e.span for _, e in items}, key=lambda s: (s.line, s.col)))),
        f"{kind}: {len(items)} UE(s) block forever with {finished} already finished — {ops}{more}",
        ev.span,
    )


def prove_deadlock(graph: CommGraph, assignment_cap: int = 256) -> List[Issue]:
    """DF501: replay every feasible assignment; report hangs and crashes."""
    issues: List[Issue] = []
    seen: Set[Tuple[object, ...]] = set()
    if graph.incomplete_reasons:
        return []  # dataflow reports DF500 instead; never guess on partial traces
    for assignment in graph.assignments(cap=assignment_cap):
        result = simulate_schedule(graph.n_ues, assignment)
        if result.completed:
            continue
        key, message, span = _describe_blockage(result, graph.n_ues)
        if key in seen:
            continue
        seen.add(key)
        issues.append(Issue(rule="DF501", span=span, key=key, message=message))
    return issues


# --------------------------------------------------------------------------
# DF502: collective congruence
# --------------------------------------------------------------------------


def prove_congruence(graph: CommGraph, assignment_cap: int = 256) -> List[Issue]:
    """DF502: every UE must run the same collective sequence on every
    feasible branch assignment (same kind, same root, and — for
    reduce/allreduce — the same statically-known contribution size)."""
    issues: List[Issue] = []
    seen: Set[Tuple[object, ...]] = set()
    if graph.incomplete_reasons:
        # Same abstention as prove_deadlock: a truncated trace (e.g. a
        # construct the interpreter aborts on for only some ranks) would
        # fake a count/kind divergence — let DF500 speak instead.
        return []

    def record(span: Span, key: Tuple[object, ...], message: str) -> None:
        if key not in seen:
            seen.add(key)
            issues.append(Issue(rule="DF502", span=span, key=key, message=message))

    for assignment in graph.assignments(cap=assignment_cap):
        ref = assignment[0].collective_signature()
        ref_events = [ev for ev in assignment[0].events if ev.kind == "collective"]
        for tr in assignment[1:]:
            sig = tr.collective_signature()
            col_events = [ev for ev in tr.events if ev.kind == "collective"]
            for i, (a, b) in enumerate(zip(ref, sig)):
                span = col_events[i].span if i < len(col_events) else Span()
                if a[0] != b[0]:
                    record(
                        span,
                        ("kind", i, a[0], b[0], span),
                        f"collective divergence at position {i}: UE 0 enters "
                        f"{a[0]!r} but UE {tr.ue} enters {b[0]!r}",
                    )
                    break
                if a[1] is not None and b[1] is not None and a[1] != b[1]:
                    record(
                        span,
                        ("root", i, span),
                        f"collective root divergence at position {i}: UE 0 uses "
                        f"{a[0]}(root={a[1]}) but UE {tr.ue} uses {b[0]}(root={b[1]})",
                    )
                    break
                if a[2] is not None and b[2] is not None and a[2] != b[2]:
                    record(
                        span,
                        ("size", i, span),
                        f"collective contribution divergence at position {i}: UE 0 "
                        f"feeds {a[2]} B into {a[0]} but UE {tr.ue} feeds {b[2]} B",
                    )
                    break
            else:
                if len(ref) != len(sig):
                    longer, shorter = (0, tr.ue) if len(ref) > len(sig) else (tr.ue, 0)
                    i = min(len(ref), len(sig))
                    extra = ref_events if len(ref) > len(sig) else col_events
                    span = extra[i].span if i < len(extra) else Span()
                    record(
                        span,
                        ("count", len(ref), len(sig), span),
                        f"collective count divergence: UE {longer} enters "
                        f"{max(len(ref), len(sig))} collective(s) but UE {shorter} "
                        f"only {min(len(ref), len(sig))} — the extras hang",
                    )
    return issues


# --------------------------------------------------------------------------
# DF503: MPB capacity bounds
# --------------------------------------------------------------------------


def prove_capacity(graph: CommGraph, budget: int = MPB_BYTES_PER_CORE) -> List[Issue]:
    """DF503: statically-known payloads larger than the per-core MPB.

    ``comm.send`` chunks transparently, so an overrun is not a hang —
    it is a serialized ``ceil(nbytes / budget)`` chunk round-trip chain,
    the dominant cost cliff of large RCCE messages (paper Sec. II).
    """
    issues: List[Issue] = []
    seen: Set[Tuple[object, ...]] = set()
    for ue in range(graph.n_ues):
        for tr in graph.traces[ue]:
            for ev in tr.events:
                if ev.nbytes is None or ev.nbytes <= budget:
                    continue
                chunks = -(-ev.nbytes // budget)
                key = (ev.span, ev.op, ev.nbytes)
                if key in seen:
                    continue
                seen.add(key)
                issues.append(
                    Issue(
                        rule="DF503",
                        span=ev.span,
                        key=key,
                        message=(
                            f"{ev.op} payload of {ev.nbytes} B exceeds the "
                            f"{budget} B per-core MPB: the transfer serializes "
                            f"into {chunks} chunk round-trips"
                        ),
                    )
                )
    return issues
