"""``repro check`` driver: run programs under the dynamic checkers.

Two modes:

- **battery** (default): boots a set of built-in representative RCCE
  programs — the same communication shapes the shipped examples use
  (ring allgather, collective rounds, one-sided flag synchronization)
  — with a :class:`~repro.analysis.runtime_checks.RuntimeChecker`
  attached and determinism replay on, and reports every finding.

- **program**: load ``path.py:function`` and drive it the same way, so
  a suspect UE program can be checked in isolation (this is how the
  test fixtures demonstrate each runtime checker).
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..rcce.errors import RCCEDeadlockError, RCCEError
from ..scc.chip import CONF0
from ..sim import ProcessFailure, SimulationError
from .determinism import verify_program_determinism
from .findings import Finding, Severity
from .runtime_checks import RuntimeChecker

__all__ = ["CheckResult", "run_checked", "check_battery", "load_program"]


@dataclass
class CheckResult:
    """Findings and status of one checked program."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    completed: bool = False
    deterministic: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return (
            self.completed
            and self.deterministic is not False
            and not any(f.severity is Severity.ERROR for f in self.findings)
        )


# --------------------------------------------------------------------------
# Built-in battery programs (mirror the shipped examples' shapes)
# --------------------------------------------------------------------------


def _ring_allgather(comm: Any) -> Generator[Any, Any, float]:
    """Even/odd staggered ring exchange + barrier (rcce_programming.py)."""
    payload = np.full(64, float(comm.ue))
    right = (comm.ue + 1) % comm.num_ues
    left = (comm.ue - 1) % comm.num_ues
    current = payload
    for _step in range(comm.num_ues - 1):
        if comm.ue % 2 == 0:
            yield from comm.send(current, right)
            current = yield from comm.recv(left)
        else:
            incoming = yield from comm.recv(left)
            yield from comm.send(current, right)
            current = incoming
    yield from comm.barrier()
    return comm.wtime()


def _collective_round(comm: Any) -> Generator[Any, Any, float]:
    """One of each collective in a fixed order (cg/pagerank shape)."""
    total = yield from comm.allreduce(float(comm.ue))
    data = np.full(32, total) if comm.ue == 0 else None
    data = yield from comm.bcast(data, root=0)
    partial = yield from comm.reduce(float(data[0]), root=0)
    blocks = yield from comm.gather(np.full(8, float(comm.ue)), root=0)
    yield from comm.compute(1e-6 * (1 if blocks is None else 2))
    yield from comm.barrier()
    return float(0.0 if partial is None else partial)


def _flag_handshake(comm: Any) -> Generator[Any, Any, int]:
    """One-sided put/flag/get pairs (onesided layer shape)."""
    from ..rcce.onesided import OneSided

    rt = comm._rt
    onesided = getattr(rt, "_check_onesided", None)
    if onesided is None:
        onesided = OneSided(rt)
        rt._check_onesided = onesided
    partner = comm.ue ^ 1
    if partner >= comm.num_ues:
        yield from comm.barrier()
        return 0
    if comm.ue < partner:
        yield from onesided.put(comm.ue, partner, 0, np.full(16, float(comm.ue)))
        yield from onesided.set_flag(comm.ue, partner, flag_id=0)
    else:
        yield from onesided.wait_flag(comm.ue, flag_id=0)
        payload = yield from onesided.get(comm.ue, comm.ue, 0)
        assert payload.shape == (16,)
    yield from comm.barrier()
    return 1


BATTERY: List[Tuple[str, Callable[..., Any], int]] = [
    ("ring-allgather", _ring_allgather, 8),
    ("collective-round", _collective_round, 6),
    ("onesided-flag-handshake", _flag_handshake, 4),
]


# --------------------------------------------------------------------------
# Checked execution
# --------------------------------------------------------------------------


def run_checked(
    name: str,
    fn: Callable[..., Any],
    n_ues: int,
    args_factory: Optional[Callable[[], Sequence[Any]]] = None,
    verify_determinism: bool = True,
) -> CheckResult:
    """Run one UE program with the runtime checkers attached."""
    from ..core.mapping import distance_reduction_mapping
    from ..rcce.runtime import RCCERuntime

    result = CheckResult(name=name)
    checker = RuntimeChecker()
    rt = RCCERuntime(distance_reduction_mapping(n_ues), config=CONF0, checker=checker)
    extra = list(args_factory()) if args_factory is not None else []
    try:
        rt.run(fn, *extra)
        result.completed = True
    except RCCEDeadlockError:
        # the checker's on_deadlock hook already recorded RT801
        result.completed = False
    except (RCCEError, ProcessFailure, SimulationError) as exc:
        result.findings.append(
            Finding(
                rule="RT800",
                severity=Severity.ERROR,
                message=f"program {name!r} crashed: {exc}",
                hint="fix the raised protocol error",
            )
        )
    result.findings.extend(checker.findings)

    if verify_determinism and result.completed:
        report = verify_program_determinism(fn, n_ues, args_factory=args_factory)
        result.deterministic = report.deterministic
        result.findings.extend(report.findings)
    return result


def check_battery(verify_determinism: bool = True) -> List[CheckResult]:
    """Run every built-in battery program under the checkers."""
    return [
        run_checked(name, fn, n_ues, verify_determinism=verify_determinism)
        for name, fn, n_ues in BATTERY
    ]


def load_program(spec: str) -> Tuple[str, Callable[..., Any]]:
    """Resolve ``path/to/file.py:function`` into a callable."""
    if ":" not in spec:
        raise ValueError(f"program spec must be 'file.py:function', got {spec!r}")
    path, _, func_name = spec.rpartition(":")
    module_spec = importlib.util.spec_from_file_location("_repro_checked_program", path)
    if module_spec is None or module_spec.loader is None:
        raise FileNotFoundError(f"cannot load module from {path!r}")
    module = importlib.util.module_from_spec(module_spec)
    sys.modules[module_spec.name] = module
    try:
        module_spec.loader.exec_module(module)
    finally:
        sys.modules.pop(module_spec.name, None)
    if not hasattr(module, func_name):
        raise AttributeError(f"{path!r} defines no function {func_name!r}")
    fn = getattr(module, func_name)
    if not callable(fn):
        raise TypeError(f"{spec!r} is not callable")
    return func_name, fn
