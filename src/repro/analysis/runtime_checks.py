"""Dynamic checkers wired into the RCCE runtime.

A :class:`RuntimeChecker` attaches to one
:class:`~repro.rcce.runtime.RCCERuntime` and observes the simulation
through small hooks in the mailbox, one-sided MPB and collective layers.
It never changes behaviour — it only records structured findings:

- **deadlock** (``RT801``): the event queue drained with UEs still
  blocked; the finding carries the wait-for graph naming which rank
  waits on which (peer, tag).
- **mailbox race** (``RT802``): a second envelope with the same
  (source, tag) was queued behind an undrained first — on the real MPB
  the second write clobbers the first.
- **MPB overwrite race** (``RT803``): a one-sided put overwrote an
  offset whose previous payload was never read.
- **collective mismatch** (``RT804``/``RT805``): ranks entered different
  collectives at the same position in the program, or the same
  reduce/allreduce with inconsistent payload sizes.

Enable per runtime with ``RCCERuntime(..., checks=True)`` or globally
with the ``REPRO_CHECKS`` environment variable (the test suite turns it
on for every run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .findings import Finding, Severity

__all__ = ["CollectiveEntry", "RuntimeChecker"]


@dataclass(frozen=True)
class CollectiveEntry:
    """One rank's entry into a collective: what and how big."""

    kind: str
    nbytes: int
    time: float


#: collectives whose per-rank contribution must be size-consistent.
#: gather/bcast legitimately carry different sizes per rank (variable
#: blocks, root-only payload) and are excluded.
_SIZE_CHECKED = frozenset({"reduce", "allreduce"})


class RuntimeChecker:
    """Observes one runtime and accumulates findings (never raises)."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._runtime: Optional[Any] = None
        #: per-UE ordered log of collective entries.
        self.collective_log: Dict[int, List[CollectiveEntry]] = {}
        #: first entry observed at each collective position (the reference
        #: every later rank is compared against).
        self._reference: Dict[int, CollectiveEntry] = {}
        self._reference_ue: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def attach(self, runtime: Any) -> None:
        """Bind to a runtime (called by RCCERuntime.__init__)."""
        self._runtime = runtime
        self.collective_log = {ue: [] for ue in range(runtime.n_ues)}

    @property
    def errors(self) -> List[Finding]:
        """ERROR-severity findings recorded so far."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def _record(self, rule: str, message: str, hint: str, severity: Severity = Severity.ERROR) -> None:
        self.findings.append(
            Finding(rule=rule, severity=severity, message=message, hint=hint)
        )

    # -- hooks (called from the rcce layer) --------------------------------

    def on_deadlock(self, wait_for: Dict[int, Any], sim_time: float) -> None:
        """Event queue drained with blocked UEs; record the wait-for graph."""
        from ..rcce.errors import format_wait_for

        self._record(
            "RT801",
            f"deadlock at t={sim_time:.9f}: "
            f"{len(wait_for)} UE(s) blocked:\n{format_wait_for(wait_for)}",
            "every send needs a matching recv on the addressed rank; check "
            "tags and make all ranks enter the same collectives",
        )

    def on_mailbox_race(self, owner: int, source: int, tag: int, time: float) -> None:
        """Duplicate (source, tag) queued behind an undrained envelope."""
        from ..rcce.collectives import tag_name

        self._record(
            "RT802",
            f"mailbox race on UE {owner} at t={time:.9f}: a second message "
            f"from UE {source} with tag={tag_name(tag)} queued while the "
            f"first is undrained — on the real MPB the write clobbers it",
            "drain (recv) between same-tag sends, or use distinct tags",
        )

    def on_mpb_overwrite(
        self, owner: int, offset: int, old_nbytes: int, new_nbytes: int, time: float
    ) -> None:
        """One-sided put overwrote undrained data (conflicting MPB writes)."""
        self._record(
            "RT803",
            f"MPB overwrite race on core {owner} at t={time:.9f}: offset "
            f"{offset} rewritten ({old_nbytes} B -> {new_nbytes} B) without "
            f"an intervening read",
            "synchronize with a flag (OneSided.set_flag/wait_flag) before "
            "reusing an MPB offset",
        )

    def on_collective_enter(self, ue: int, kind: str, nbytes: int, time: float) -> None:
        """A rank entered a (outermost) collective; cross-check the epoch."""
        log = self.collective_log.setdefault(ue, [])
        entry = CollectiveEntry(kind, nbytes, time)
        index = len(log)
        log.append(entry)
        ref = self._reference.get(index)
        if ref is None:
            self._reference[index] = entry
            self._reference_ue[index] = ue
            return
        ref_ue = self._reference_ue[index]
        if entry.kind != ref.kind:
            self._record(
                "RT804",
                f"collective mismatch at position {index}: UE {ue} entered "
                f"{entry.kind!r} but UE {ref_ue} entered {ref.kind!r} — the "
                f"job will hang or fold garbage",
                "all ranks must call the same collective in the same order",
            )
        elif entry.kind in _SIZE_CHECKED and entry.nbytes != ref.nbytes:
            self._record(
                "RT805",
                f"collective payload mismatch at position {index}: UE {ue} "
                f"contributes {entry.nbytes} B to {entry.kind!r} but UE "
                f"{ref_ue} contributes {ref.nbytes} B",
                "reduce/allreduce contributions must have identical shapes "
                "on every rank",
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RuntimeChecker findings={len(self.findings)}>"
