"""Static linter driver: walk sources, parse, run the rule catalogue.

The linter operates on plain source text (no imports are executed), so
it can safely inspect intentionally-buggy fixtures and third-party
programs.  Unparsable files become findings themselves (rule ``PARSE``)
rather than crashing the run.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from .findings import Finding, Severity
from .rules import ModuleContext, Rule, all_rules, get_rule, run_rules

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return out


def _resolve_rules(select: Optional[Sequence[str]]) -> Optional[List[Rule]]:
    if select is None:
        return None
    return [get_rule(rid) for rid in select]


def lint_source(
    source: str, path: str = "<string>", select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one source string; returns findings (possibly a parse error)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                hint="fix the syntax before linting",
            )
        ]
    return run_rules(ModuleContext(path, source, tree), _resolve_rules(select))


def lint_file(path: str, select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path, select)


def lint_paths(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select))
    return findings
