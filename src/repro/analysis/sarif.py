"""SARIF 2.1.0 export for :class:`~repro.analysis.findings.Finding`.

One self-contained emitter (:func:`findings_to_sarif`) producing a
static-analysis log GitHub code scanning ingests directly, plus a
dependency-free structural checker (:func:`validate_sarif`) used by the
tests; CI additionally validates the emitted log against the official
SARIF 2.1.0 JSON schema with ``jsonschema``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, Severity, sort_findings

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "findings_to_sarif", "sarif_to_json", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-analyze"
TOOL_URI = "https://github.com/repro/repro"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_catalogue(findings: Sequence[Finding]) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """reportingDescriptor array + ruleId -> index map.

    Descriptors come from the analysis rule tables when the id is known
    there; ad-hoc ids (PARSE, runtime RT8xx) get minimal descriptors.
    """
    from .dataflow import DATAFLOW_RULES
    from .rules import all_rules

    static_rules = {r.id: r for r in all_rules()}
    descriptors: List[Dict[str, Any]] = []
    index: Dict[str, int] = {}
    for f in findings:
        if f.rule in index:
            continue
        desc: Dict[str, Any] = {"id": f.rule}
        meta = static_rules.get(f.rule) or DATAFLOW_RULES.get(f.rule)
        if meta is not None:
            desc["name"] = meta.name
            desc["shortDescription"] = {"text": meta.summary}
            if meta.hint:
                desc["help"] = {"text": meta.hint}
            desc["defaultConfiguration"] = {"level": _LEVELS[meta.severity]}
        else:
            desc["shortDescription"] = {"text": f.message}
            desc["defaultConfiguration"] = {"level": _LEVELS[f.severity]}
        index[f.rule] = len(descriptors)
        descriptors.append(desc)
    return descriptors, index


def _result(f: Finding, rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": f.rule,
        "ruleIndex": rule_index[f.rule],
        "level": _LEVELS[f.severity],
        "message": {"text": f.message + (f"\nhint: {f.hint}" if f.hint else "")},
    }
    if f.has_span:
        region: Dict[str, Any] = {"startLine": f.line}
        if f.col:
            region["startColumn"] = f.col
        if f.end_line:
            region["endLine"] = f.end_line
        if f.end_col:
            region["endColumn"] = f.end_col
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path.replace("\\", "/")},
                    "region": region,
                }
            }
        ]
    return result


def findings_to_sarif(
    findings: Iterable[Finding], tool_version: Optional[str] = None
) -> Dict[str, Any]:
    """One SARIF 2.1.0 log (a single run) from a set of findings."""
    ordered = sort_findings(findings)
    descriptors, rule_index = _rule_catalogue(ordered)
    if tool_version is None:
        from .. import __version__ as tool_version
    driver: Dict[str, Any] = {
        "name": TOOL_NAME,
        "informationUri": TOOL_URI,
        "version": str(tool_version),
        "rules": descriptors,
    }
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [_result(f, rule_index) for f in ordered],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def sarif_to_json(findings: Iterable[Finding], tool_version: Optional[str] = None) -> str:
    """The SARIF log serialized for ``--format sarif`` output."""
    return json.dumps(findings_to_sarif(findings, tool_version), indent=2)


def validate_sarif(doc: Any) -> List[str]:
    """Structural SARIF 2.1.0 conformance errors (empty = valid).

    A hand-rolled subset of the official schema covering everything this
    emitter produces — the required properties, types and cross-indices
    GitHub's ingestion actually checks.  CI runs the real schema too;
    this keeps the tests meaningful in dependency-free environments.
    """
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    if not isinstance(doc, dict):
        return [f"log must be an object, got {type(doc).__name__}"]
    if doc.get("version") != SARIF_VERSION:
        err(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            err(f"{where} must be an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            err(f"{where}.tool.driver.name is required")
            driver = {}
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            err(f"{where}.tool.driver.rules must be an array")
            rules = []
        rule_ids: List[str] = []
        for di, desc in enumerate(rules):
            if not isinstance(desc, dict) or not isinstance(desc.get("id"), str):
                err(f"{where}.tool.driver.rules[{di}].id is required")
                rule_ids.append("")
            else:
                rule_ids.append(desc["id"])
        results = run.get("results")
        if not isinstance(results, list):
            err(f"{where}.results must be an array")
            continue
        for qi, result in enumerate(results):
            rwhere = f"{where}.results[{qi}]"
            if not isinstance(result, dict):
                err(f"{rwhere} must be an object")
                continue
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(message.get("text"), str):
                err(f"{rwhere}.message.text is required")
            level = result.get("level")
            if level is not None and level not in ("none", "note", "warning", "error"):
                err(f"{rwhere}.level {level!r} is not a SARIF level")
            rule_id = result.get("ruleId")
            rule_index = result.get("ruleIndex")
            if rule_index is not None:
                if not isinstance(rule_index, int) or not 0 <= rule_index < len(rule_ids):
                    err(f"{rwhere}.ruleIndex {rule_index!r} out of range")
                elif isinstance(rule_id, str) and rule_ids[rule_index] != rule_id:
                    err(
                        f"{rwhere}: ruleIndex {rule_index} names "
                        f"{rule_ids[rule_index]!r}, not {rule_id!r}"
                    )
            for li, loc in enumerate(result.get("locations", []) or []):
                lwhere = f"{rwhere}.locations[{li}]"
                phys = loc.get("physicalLocation") if isinstance(loc, dict) else None
                if not isinstance(phys, dict):
                    err(f"{lwhere}.physicalLocation must be an object")
                    continue
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or not isinstance(art.get("uri"), str):
                    err(f"{lwhere}.physicalLocation.artifactLocation.uri is required")
                region = phys.get("region")
                if region is not None:
                    if not isinstance(region, dict):
                        err(f"{lwhere}.physicalLocation.region must be an object")
                        continue
                    for prop in ("startLine", "startColumn", "endLine", "endColumn"):
                        val = region.get(prop)
                        if val is not None and (not isinstance(val, int) or val < 1):
                            err(f"{lwhere}.region.{prop} must be a positive integer")
    return errors
