"""Cross-validation of static DF50x verdicts against the RT80x runtime
checkers (:mod:`repro.analysis.check`) on the same program.

``repro analyze --compare-runtime`` runs both tools on one
``file.py:function`` spec at one core count and asserts they agree on
the liveness question: *does this program hang?*  The static side
answers with DF501 (or abstains via DF500 when interpretation was
incomplete); the dynamic side answers by actually executing the program
under :func:`~repro.analysis.check.run_checked` (RT801 deadlock / a
non-completing run).  Disagreement in either direction is a bug in one
of the tools, which is exactly why the mode exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .check import CheckResult, load_program, run_checked
from .dataflow import analyze_file
from .findings import Finding, Severity

__all__ = ["CrossCheckResult", "crosscheck_program", "crosscheck_findings"]


@dataclass
class CrossCheckResult:
    """Verdict pair for one program at one core count."""

    name: str
    n_ues: int
    static_findings: List[Finding] = field(default_factory=list)
    runtime: Optional[CheckResult] = None
    #: static analysis could not model the program (DF500 present)
    static_abstained: bool = False

    @property
    def static_hangs(self) -> bool:
        """Static verdict: DF501 proves the program cannot complete."""
        return any(f.rule == "DF501" for f in self.static_findings)

    @property
    def runtime_hangs(self) -> bool:
        """Dynamic verdict: the executed schedule did not complete."""
        return self.runtime is not None and not self.runtime.completed

    @property
    def agree(self) -> bool:
        """True when both tools reach the same liveness verdict.

        An abstaining static analysis (DF500) never *disagrees*: the
        analyzer explicitly declined to prove anything, so only the
        over-claim direction (DF501 on a program that completes, or a
        silent pass on a program that hangs) counts as disagreement.
        """
        if self.static_abstained:
            return True
        return self.static_hangs == self.runtime_hangs

    def describe(self) -> str:
        static = (
            "abstained (DF500)"
            if self.static_abstained
            else ("deadlock (DF501)" if self.static_hangs else "clean")
        )
        dynamic = "hang" if self.runtime_hangs else "completed"
        verdict = "AGREE" if self.agree else "DISAGREE"
        return (
            f"{self.name} @ n_ues={self.n_ues}: static={static}, "
            f"runtime={dynamic} -> {verdict}"
        )


def crosscheck_program(
    spec: str,
    n_ues: int,
    min_ues: Optional[int] = None,
    max_ues: Optional[int] = None,
) -> CrossCheckResult:
    """Run both tools on one ``file.py:function`` spec.

    The static pass analyzes the core-count range ``min_ues..max_ues``
    (defaulting to exactly ``n_ues``) while the runtime executes at
    ``n_ues``; findings are aggregated the usual way.
    """
    if ":" not in spec:
        raise ValueError(f"--compare-runtime needs a 'file.py:function' spec, got {spec!r}")
    path, _, func_name = spec.rpartition(":")
    lo = n_ues if min_ues is None else min_ues
    hi = n_ues if max_ues is None else max_ues
    static_findings = analyze_file(path, min_ues=lo, max_ues=hi, function=func_name)

    name, fn = load_program(spec)
    runtime = run_checked(name, fn, n_ues=n_ues, verify_determinism=False)

    return CrossCheckResult(
        name=name,
        n_ues=n_ues,
        static_findings=static_findings,
        runtime=runtime,
        static_abstained=any(f.rule == "DF500" for f in static_findings),
    )


def crosscheck_findings(result: CrossCheckResult) -> List[Finding]:
    """The combined finding list, plus a synthetic XCHECK error on
    disagreement (so the CLI exit code reflects the verdict)."""
    findings = list(result.static_findings)
    if result.runtime is not None:
        findings.extend(result.runtime.findings)
    if not result.agree:
        findings.append(
            Finding(
                rule="XCHECK",
                severity=Severity.ERROR,
                message=(
                    f"static and runtime verdicts disagree for {result.name} "
                    f"at n_ues={result.n_ues}: static says "
                    f"{'deadlock' if result.static_hangs else 'clean'}, the "
                    f"executed schedule "
                    f"{'hung' if result.runtime_hangs else 'completed'}"
                ),
                hint="one of the two tools is wrong — file a bug with this program",
            )
        )
    return findings
