"""Pure metadata describing the :class:`~repro.rcce.api.RCCEComm` surface.

One declarative table — no runtime imports, no side effects — naming
every communication method a UE program can call, its role (point to
point, collective, local), whether it blocks, and where its payload /
peer / tag / root arguments sit in the call signature.

Both halves of the correctness tooling consume this table so they can
never drift from each other or from the runtime:

- the static layers (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.dataflow`) use it to recognize and decode
  ``comm.<method>(...)`` calls in the AST;
- a drift test (``tests/test_rcce_runtime.py``) asserts the table
  matches the *actual* ``RCCEComm`` method signatures via
  :func:`inspect.signature`, so an API change that forgets the table
  fails CI immediately.

Argument positions are 0-based indices into the call's positional
arguments *after* ``self`` (i.e. as written at a ``comm.send(...)``
call site), paired with the keyword name for keyword-style calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "ArgSpec",
    "CommOp",
    "COMM_API",
    "COMM_GEN_METHODS",
    "COLLECTIVE_METHODS",
    "P2P_METHODS",
    "LOCAL_METHODS",
]


@dataclass(frozen=True)
class ArgSpec:
    """Position and keyword of one argument of a comm call."""

    index: int    #: 0-based positional index at the call site
    keyword: str  #: keyword name for ``comm.send(data, dest=1)`` style


@dataclass(frozen=True)
class CommOp:
    """Static description of one ``RCCEComm`` method.

    ``kind`` is one of:

    - ``"p2p-send"``  — addressed message transmission;
    - ``"p2p-recv"``  — matched message reception;
    - ``"collective"`` — all UEs must participate;
    - ``"local"``     — advances simulated time only, no communication.
    """

    name: str
    kind: str
    blocking: bool                    #: can this call block on a peer?
    payload: Optional[ArgSpec] = None  #: the data argument, if any
    peer: Optional[ArgSpec] = None     #: dest (sends) / source (recvs)
    tag: Optional[ArgSpec] = None      #: message tag, if any
    root: Optional[ArgSpec] = None     #: collective root rank, if any
    timeout: Optional[ArgSpec] = None  #: deadline argument (recv only)
    returns_payload: bool = False      #: yields a data value to the caller

    @property
    def is_communication(self) -> bool:
        """True for operations that exchange data between UEs."""
        return self.kind in ("p2p-send", "p2p-recv", "collective")


#: The full RCCE-style comm API, one entry per RCCEComm generator method
#: plus the non-generator query surface the analyzer must understand.
COMM_API: Dict[str, CommOp] = {
    op.name: op
    for op in (
        CommOp(
            "send",
            "p2p-send",
            blocking=True,
            payload=ArgSpec(0, "data"),
            peer=ArgSpec(1, "dest"),
            tag=ArgSpec(2, "tag"),
        ),
        CommOp(
            "send_async",
            "p2p-send",
            blocking=False,
            payload=ArgSpec(0, "data"),
            peer=ArgSpec(1, "dest"),
            tag=ArgSpec(2, "tag"),
        ),
        CommOp(
            "recv",
            "p2p-recv",
            blocking=True,
            peer=ArgSpec(0, "source"),
            tag=ArgSpec(1, "tag"),
            timeout=ArgSpec(2, "timeout"),
            returns_payload=True,
        ),
        CommOp("barrier", "collective", blocking=True),
        CommOp(
            "bcast",
            "collective",
            blocking=True,
            payload=ArgSpec(0, "data"),
            root=ArgSpec(1, "root"),
            returns_payload=True,
        ),
        CommOp(
            "reduce",
            "collective",
            blocking=True,
            payload=ArgSpec(0, "value"),
            root=ArgSpec(2, "root"),
            returns_payload=True,
        ),
        CommOp(
            "allreduce",
            "collective",
            blocking=True,
            payload=ArgSpec(0, "value"),
            returns_payload=True,
        ),
        CommOp(
            "gather",
            "collective",
            blocking=True,
            payload=ArgSpec(0, "value"),
            root=ArgSpec(1, "root"),
            returns_payload=True,
        ),
        CommOp("compute", "local", blocking=False, payload=ArgSpec(0, "seconds")),
        CommOp("compute_cycles", "local", blocking=False, payload=ArgSpec(0, "cycles")),
        CommOp("set_power", "local", blocking=False, payload=ArgSpec(0, "mhz")),
    )
}

#: generator methods that must be driven with ``yield from``.
COMM_GEN_METHODS: FrozenSet[str] = frozenset(COMM_API)

#: the collective subset (rank-dependent entry deadlocks the job).
COLLECTIVE_METHODS: FrozenSet[str] = frozenset(
    name for name, op in COMM_API.items() if op.kind == "collective"
)

#: point-to-point methods (sends and receives).
P2P_METHODS: FrozenSet[str] = frozenset(
    name for name, op in COMM_API.items() if op.kind.startswith("p2p")
)

#: purely local time-advancing methods.
LOCAL_METHODS: FrozenSet[str] = frozenset(
    name for name, op in COMM_API.items() if op.kind == "local"
)


def signature_table() -> Dict[str, Tuple[Tuple[int, str], ...]]:
    """(index, keyword) of every declared argument, per method.

    Used by the drift test to diff this table against
    ``inspect.signature(RCCEComm.<method>)``.
    """
    out: Dict[str, Tuple[Tuple[int, str], ...]] = {}
    for name, op in COMM_API.items():
        specs = [
            s
            for s in (op.payload, op.peer, op.tag, op.root, op.timeout)
            if s is not None
        ]
        out[name] = tuple(sorted((s.index, s.keyword) for s in specs))
    return out
