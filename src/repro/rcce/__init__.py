"""RCCE-style message-passing runtime over the simulated SCC.

- :class:`~repro.rcce.runtime.RCCERuntime` — boot a job of n UEs on a
  list of physical cores under a chip configuration.
- :class:`~repro.rcce.api.RCCEComm` — per-UE communicator (send/recv,
  barrier, bcast, reduce, allreduce, gather, wtime, compute).
- :mod:`~repro.rcce.mpb` — the 8 KB-per-core message-passing buffer
  model and matched mailboxes.
"""

from .api import RCCEComm, payload_bytes
from .comm_meta import (
    COLLECTIVE_METHODS,
    COMM_API,
    COMM_GEN_METHODS,
    LOCAL_METHODS,
    P2P_METHODS,
    ArgSpec,
    CommOp,
)
from .collectives import (
    RESERVED_TAG_BASE,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    tag_name,
)
from .errors import RCCEDeadlockError, RCCEError, format_wait_for
from .mpb import MPB_BYTES_PER_CORE, Envelope, Mailbox, chunked_transfer_time
from .onesided import FLAG_CLEAR, FLAG_SET, MPBWindow, OneSided
from .power import (
    FREQ_CHANGE_SECONDS,
    N_VOLTAGE_DOMAINS,
    VOLTAGE_RAMP_SECONDS,
    PowerManager,
)
from .runtime import RCCERuntime, UEResult, checks_enabled_by_default

__all__ = [
    "RCCEComm",
    "payload_bytes",
    "ArgSpec",
    "CommOp",
    "COMM_API",
    "COMM_GEN_METHODS",
    "COLLECTIVE_METHODS",
    "P2P_METHODS",
    "LOCAL_METHODS",
    "RESERVED_TAG_BASE",
    "tag_name",
    "RCCEError",
    "RCCEDeadlockError",
    "format_wait_for",
    "checks_enabled_by_default",
    "allreduce",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "MPB_BYTES_PER_CORE",
    "Envelope",
    "Mailbox",
    "chunked_transfer_time",
    "FLAG_CLEAR",
    "FLAG_SET",
    "MPBWindow",
    "OneSided",
    "FREQ_CHANGE_SECONDS",
    "N_VOLTAGE_DOMAINS",
    "VOLTAGE_RAMP_SECONDS",
    "PowerManager",
    "RCCERuntime",
    "UEResult",
]
