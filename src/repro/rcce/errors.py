"""Structured error types for the RCCE runtime layer.

Protocol bugs on the real SCC hang the chip with no diagnostic; here
they raise typed exceptions that name the offending rank, peer and tag
so a simulation failure is actionable.  All inherit from
:class:`RCCEError` (itself a ``RuntimeError`` for backwards
compatibility with callers that catch broadly).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["RCCEError", "RCCEDeadlockError", "WaitInfo", "format_wait_for"]

#: One blocked UE's wait state: (kind, peer, tag) where kind is "recv"
#: or "send", peer is the UE rank waited on (None = wildcard) and tag
#: is the message tag (None = wildcard).
WaitInfo = Tuple[str, Optional[int], Optional[int]]


class RCCEError(RuntimeError):
    """Base class for RCCE protocol and usage errors."""


def format_wait_for(wait_for: Dict[int, Optional[WaitInfo]]) -> str:
    """Render a wait-for graph as one line per blocked UE."""
    from .collectives import tag_name  # local import avoids a cycle

    lines = []
    for ue in sorted(wait_for):
        info = wait_for[ue]
        if info is None:
            lines.append(f"  UE {ue}: blocked on an untracked event")
            continue
        kind, peer, tag = info
        peer_s = "any" if peer is None else str(peer)
        tag_s = "any" if tag is None else tag_name(tag)
        if kind == "recv":
            lines.append(f"  UE {ue}: waits in recv(source={peer_s}, tag={tag_s})")
        else:
            lines.append(f"  UE {ue}: blocked in send to UE {peer_s} (tag={tag_s})")
    return "\n".join(lines)


class RCCEDeadlockError(RCCEError):
    """The event queue drained while UEs were still blocked.

    Carries the wait-for graph: for every stuck UE, what it was waiting
    on when the simulation ran out of events.
    """

    def __init__(
        self,
        wait_for: Dict[int, Optional[WaitInfo]],
        sim_time: float,
    ) -> None:
        self.wait_for = wait_for
        self.sim_time = sim_time
        stuck = sorted(wait_for)
        super().__init__(
            f"deadlock: UEs {stuck} never finished (event queue drained at "
            f"t={sim_time:.9f}); wait-for graph:\n{format_wait_for(wait_for)}"
        )
