"""Structured error types for the RCCE runtime layer.

Protocol bugs on the real SCC hang the chip with no diagnostic; here
they raise typed exceptions that name the offending rank, peer and tag
so a simulation failure is actionable.  All inherit from
:class:`RCCEError` (itself a ``RuntimeError`` for backwards
compatibility with callers that catch broadly).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "RCCEError",
    "RCCEDeadlockError",
    "RCCETimeoutError",
    "RCCEBudgetExceededError",
    "WaitInfo",
    "format_wait_for",
]

#: One blocked UE's wait state: (kind, peer, tag) where kind is "recv"
#: or "send", peer is the UE rank waited on (None = wildcard) and tag
#: is the message tag (None = wildcard).
WaitInfo = Tuple[str, Optional[int], Optional[int]]


class RCCEError(RuntimeError):
    """Base class for RCCE protocol and usage errors."""


def format_wait_for(
    wait_for: Dict[int, Optional[WaitInfo]],
    failed_ues: Optional[Dict[int, float]] = None,
) -> str:
    """Render a wait-for graph as one line per blocked UE.

    ``failed_ues`` maps crashed ranks to their simulated failure time;
    when the peer a UE waits on is in that map the line says so, which
    separates "peer crashed" from "peer never sent" in diagnostics.
    """
    from .collectives import tag_name  # local import avoids a cycle

    failed = failed_ues or {}

    def _peer(peer: Optional[int]) -> str:
        if peer is None:
            return "any"
        if peer in failed:
            return f"{peer} [CRASHED at t={failed[peer]:.9f}]"
        return str(peer)

    lines = []
    for ue in sorted(wait_for):
        info = wait_for[ue]
        if info is None:
            lines.append(f"  UE {ue}: blocked on an untracked event")
            continue
        kind, peer, tag = info
        peer_s = _peer(peer)
        tag_s = "any" if tag is None else tag_name(tag)
        if kind == "recv":
            lines.append(f"  UE {ue}: waits in recv(source={peer_s}, tag={tag_s})")
        else:
            lines.append(f"  UE {ue}: blocked in send to UE {peer_s} (tag={tag_s})")
    return "\n".join(lines)


class RCCEDeadlockError(RCCEError):
    """The event queue drained while UEs were still blocked.

    Carries the wait-for graph: for every stuck UE, what it was waiting
    on when the simulation ran out of events.  When core failures were
    injected (``failed_ues``) the rendering names the crash as the root
    cause instead of an unexplained missing message.
    """

    def __init__(
        self,
        wait_for: Dict[int, Optional[WaitInfo]],
        sim_time: float,
        failed_ues: Optional[Dict[int, float]] = None,
        fault_note: str = "",
    ) -> None:
        self.wait_for = wait_for
        self.sim_time = sim_time
        self.failed_ues = dict(failed_ues or {})
        self.fault_note = fault_note
        stuck = sorted(wait_for)
        message = (
            f"deadlock: UEs {stuck} never finished (event queue drained at "
            f"t={sim_time:.9f}); wait-for graph:\n"
            f"{format_wait_for(wait_for, self.failed_ues)}"
        )
        if fault_note:
            message += f"\n  {fault_note}"
        super().__init__(message)


class RCCETimeoutError(RCCEError):
    """A timed receive expired before a matching message arrived."""

    def __init__(
        self,
        ue: int,
        source: Optional[int],
        tag: Optional[int],
        timeout: float,
        sim_time: float,
    ) -> None:
        self.ue = ue
        self.source = source
        self.tag = tag
        self.timeout = timeout
        self.sim_time = sim_time
        src_s = "any" if source is None else str(source)
        tag_s = "any" if tag is None else str(tag)
        super().__init__(
            f"UE {ue}: recv(source={src_s}, tag={tag_s}) timed out after "
            f"{timeout:.9f}s at t={sim_time:.9f}"
        )


class RCCEBudgetExceededError(RCCEError):
    """The per-run simulated-time budget expired with UEs still running.

    Distinct from :class:`RCCEDeadlockError`: the event queue was *not*
    empty — the job was making (possibly pathological) progress but ran
    out of its allotted simulated time.  Campaigns convert this into a
    structured ``{"status": "timeout"}`` record and move on.
    """

    def __init__(self, budget: float, running_ues: list, sim_time: float) -> None:
        self.budget = budget
        self.running_ues = list(running_ues)
        self.sim_time = sim_time
        super().__init__(
            f"simulated-time budget of {budget:.9f}s exhausted at "
            f"t={sim_time:.9f} with UEs {self.running_ues} still running"
        )
