"""The RCCE runtime: UEs as simulated processes on SCC cores.

:class:`RCCERuntime` owns one :class:`~repro.sim.Simulator`, a mesh
model clocked at the chip configuration's frequency, and one mailbox
per UE.  ``run(fn)`` spawns ``fn(comm)`` as a generator process per UE
(mirroring how every core executes the same RCCE binary), drives the
simulation to completion and returns each UE's return value plus its
finish time.

The *core map* — which physical core each UE rank lands on — is the
knob of the paper's mapping study; mapping policies live in
:mod:`repro.core.mapping` and are passed in here as an explicit list.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..scc.chip import CONF0, SCCConfig
from ..scc.mesh import MeshNetwork
from ..scc.topology import N_CORES, SCCTopology
from ..sim import Process, SimEvent, Simulator
from .api import RCCEComm
from .errors import RCCEBudgetExceededError, RCCEDeadlockError, WaitInfo
from .mpb import Mailbox
from .power import PowerManager

__all__ = ["UEResult", "RCCERuntime", "checks_enabled_by_default"]

UEFunction = Callable[..., Generator[SimEvent, Any, Any]]


def checks_enabled_by_default() -> bool:
    """Whether new runtimes attach a RuntimeChecker automatically.

    Controlled by the ``REPRO_CHECKS`` environment variable ("1"/"true"/
    "on" enable).  The test suite turns it on for every run; production
    campaigns leave it off and opt in per runtime via ``checks=True``.
    """
    return os.environ.get("REPRO_CHECKS", "").lower() in ("1", "true", "on", "yes")


class UEResult:
    """Return value and timing of one UE."""

    __slots__ = ("ue", "core", "value", "finish_time")

    def __init__(self, ue: int, core: int, value: Any, finish_time: float) -> None:
        self.ue = ue
        self.core = core
        self.value = value
        self.finish_time = finish_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UEResult ue={self.ue} core={self.core} t={self.finish_time:.6f}>"


class RCCERuntime:
    """A booted RCCE job: n_ues ranks mapped onto SCC cores."""

    def __init__(
        self,
        core_map: Sequence[int],
        config: SCCConfig = CONF0,
        topology: Optional[SCCTopology] = None,
        checks: Optional[bool] = None,
        checker: Optional[Any] = None,
        record_trace: bool = False,
        fault_plan: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        core_list = list(core_map)
        if not core_list:
            raise ValueError("core_map must name at least one core")
        if len(set(core_list)) != len(core_list):
            raise ValueError(f"core_map has duplicate cores: {core_list}")
        for c in core_list:
            if not 0 <= c < N_CORES:
                raise ValueError(f"core {c} out of range [0, {N_CORES})")
        self.core_map: List[int] = core_list
        self.n_ues = len(core_list)
        self.config = config
        self.topology = topology or SCCTopology()
        #: optional :class:`repro.obs.Tracer` shared by every layer of
        #: this job (simulator, mesh, mailboxes, fault injector).
        self.tracer = tracer if tracer else None
        self.sim = Simulator(record_trace=record_trace, tracer=self.tracer)
        if self.tracer is not None:
            self.tracer.bind_clock(lambda: self.sim.now)
        self.mesh = MeshNetwork(self.topology, mesh_mhz=config.mesh_mhz, tracer=self.tracer)
        self.power = PowerManager(config, self.topology)
        if checker is None and (checks if checks is not None else checks_enabled_by_default()):
            from ..analysis.runtime_checks import RuntimeChecker

            checker = RuntimeChecker()
        self.checker = checker
        if checker is not None:
            checker.attach(self)
        #: deterministic fault injection (None = the perfect machine).
        self.fault_injector: Optional[Any] = None
        if fault_plan is not None:
            from ..faults.injector import FaultInjector  # lazy: avoids a cycle

            self.fault_injector = FaultInjector(
                fault_plan, self.n_ues, self.sim, tracer=self.tracer
            )
            for src_tile, dst_tile, factor in self.fault_injector.link_degradations():
                self.mesh.set_link_degradation(src_tile, dst_tile, factor)
        #: crashed ranks and their simulated failure time.
        self.failed_ues: Dict[int, float] = {}
        #: rendezvous sends currently blocked on their ack: ue -> (dest, tag)
        self.blocked_sends: Dict[int, Tuple[int, int]] = {}
        self.mailboxes = [
            Mailbox(
                self.sim,
                ue,
                n_peers=self.n_ues,
                checker=checker,
                injector=self.fault_injector,
                tracer=self.tracer,
            )
            for ue in range(self.n_ues)
        ]
        self.comms = [RCCEComm(self, ue) for ue in range(self.n_ues)]

    def run(self, fn: UEFunction, *args: Any, until: Optional[float] = None) -> List[UEResult]:
        """Execute ``fn(comm, *args)`` on every UE; returns per-UE results.

        Raises :class:`RCCEDeadlockError` if any UE is still blocked when
        the event queue drains — silent partial completion would mask
        protocol bugs — and :class:`RCCEBudgetExceededError` when an
        ``until`` budget expires with work still pending (the job was
        live, it just ran out of simulated time).  Injected permanent
        core failures kill the victim's process at the planned time; a
        killed UE counts as finished (dead), not stuck.
        """
        finish_times = [0.0] * self.n_ues

        tr = self.tracer
        procs: List[Process] = []
        for ue in range(self.n_ues):
            comm = self.comms[ue]
            gen = fn(comm, *args)
            proc = Process(self.sim, gen, name=f"ue{ue}")
            if tr:
                tr.begin("ue.run", tid=ue, cat="rcce", core=self.core_map[ue])

            def _stamp(_value: Any, ue: int = ue) -> None:
                finish_times[ue] = self.sim.now
                if tr:
                    tr.end("ue.run", tid=ue, cat="rcce")

            proc.done.add_callback(_stamp)
            procs.append(proc)

        if self.fault_injector is not None:
            for ue, fail_time in self.fault_injector.core_failures():
                self.sim.schedule(
                    fail_time, lambda ue=ue: self._kill_ue(procs[ue], ue)
                )

        self.sim.run(until=until)

        stuck = [
            ue
            for ue in range(self.n_ues)
            if not procs[ue].finished and ue not in self.failed_ues
        ]
        if stuck:
            if until is not None and not self.sim.empty():
                raise RCCEBudgetExceededError(until, stuck, self.sim.now)
            wait_for = self._wait_for_graph(stuck)
            if self.checker is not None:
                self.checker.on_deadlock(wait_for, self.sim.now)
            raise RCCEDeadlockError(
                wait_for,
                self.sim.now,
                failed_ues=self.failed_ues,
                fault_note=self._fault_note(),
            )
        return [
            UEResult(ue, self.core_map[ue], procs[ue].done.value, finish_times[ue])
            for ue in range(self.n_ues)
        ]

    def _kill_ue(self, proc: Process, ue: int) -> None:
        """Apply an injected permanent core failure to a running UE."""
        if proc.finished:
            return
        now = self.sim.now
        self.failed_ues[ue] = now
        if self.tracer:
            self.tracer.instant(
                "core.failure", tid=ue, cat="fault", core=self.core_map[ue]
            )
        self.mailboxes[ue].failed_at = now
        proc.kill(None)
        if self.fault_injector is not None:
            self.fault_injector.on_core_failure(ue, now)

    def _fault_note(self) -> str:
        """One-line injected-fault context appended to deadlock reports."""
        if self.fault_injector is None:
            return ""
        c = self.fault_injector.counters
        parts = []
        if self.failed_ues:
            parts.append(
                f"{len(self.failed_ues)} injected core failure(s): "
                + ", ".join(f"UE {u}@t={t:.9f}" for u, t in sorted(self.failed_ues.items()))
            )
        for key, label in (
            ("drop", "dropped message(s)"),
            ("corrupt", "corrupted message(s)"),
            ("duplicate", "duplicated message(s)"),
            ("blackhole", "message(s) blackholed to dead cores"),
        ):
            if c.get(key):
                parts.append(f"{c[key]} {label}")
        if not parts:
            return "fault injection active (no faults fired before the deadlock)"
        return "fault injection: " + "; ".join(parts)

    def _wait_for_graph(self, stuck: Sequence[int]) -> Dict[int, Optional[WaitInfo]]:
        """What each stuck UE was blocked on when the queue drained.

        A UE is either parked in a matched receive (its mailbox holds the
        (source, tag) it asked for), blocked in a rendezvous send waiting
        for the receiver's ack, or — rarely — waiting on an event the
        runtime does not track (e.g. another process's ``done``).
        """
        graph: Dict[int, Optional[WaitInfo]] = {}
        for ue in stuck:
            waits = self.mailboxes[ue].waiting_requests()
            if waits:
                source, tag = waits[0]
                graph[ue] = ("recv", source, tag)
            elif ue in self.blocked_sends:
                dest, tag = self.blocked_sends[ue]
                graph[ue] = ("send", dest, tag)
            else:
                graph[ue] = None
        return graph

    def makespan(self, results: List[UEResult]) -> float:
        """Parallel completion time: the slowest UE's finish time."""
        return max(r.finish_time for r in results)
