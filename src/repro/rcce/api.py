"""RCCE-flavoured communicator API.

Intel's RCCE library addresses the participating cores as *units of
execution* (UEs) ranked 0..n-1, decoupled from physical core ids by a
configurable mapping — the indirection the paper's mapping study turns
(paper Sec. II).  :class:`RCCEComm` mirrors the RCCE primitives the
SpMV code needs:

====================  =============================================
RCCE call              here
====================  =============================================
``RCCE_send/recv``     :meth:`RCCEComm.send` / :meth:`RCCEComm.recv`
``RCCE_barrier``       :meth:`RCCEComm.barrier`
``RCCE_bcast``         :meth:`RCCEComm.bcast`
``RCCE_reduce``        :meth:`RCCEComm.reduce` / :meth:`allreduce`
``RCCE_wtime``         :meth:`RCCEComm.wtime`
====================  =============================================

All communication methods are generators that must be driven with
``yield from`` inside a UE process; they advance simulated time by the
modeled MPB/mesh cost while moving real Python/NumPy payloads.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from ..sim import SimEvent, any_of
from .errors import RCCETimeoutError
from .mpb import Envelope, chunked_transfer_time

__all__ = ["payload_bytes", "RCCEComm"]

CommGen = Generator[SimEvent, Any, Any]


def payload_bytes(obj: Any) -> int:
    """Wire size of a message payload.

    NumPy arrays count their buffer; scalars count 8 bytes; tuples/lists
    sum their elements.  Anything else costs a flat 64 bytes (control
    messages).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (int, float, complex, np.number)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return sum(payload_bytes(o) for o in obj)
    return 64


class RCCEComm:
    """Communication handle of one unit of execution."""

    def __init__(self, runtime: Any, ue: int) -> None:
        self._rt = runtime
        self.ue = ue
        self._collective_depth = 0

    # -- checker hooks -----------------------------------------------------

    def _enter_collective(self, kind: str, payload: Any) -> None:
        """Called by the collective layer on entry (outermost call only
        is reported, so a barrier's internal reduce+bcast don't count)."""
        self._collective_depth += 1
        checker = getattr(self._rt, "checker", None)
        if checker is not None and self._collective_depth == 1:
            nbytes = 0 if payload is None else payload_bytes(payload)
            checker.on_collective_enter(self.ue, kind, nbytes, self._rt.sim.now)

    def _exit_collective(self) -> None:
        self._collective_depth -= 1

    # -- identity ------------------------------------------------------------

    @property
    def num_ues(self) -> int:
        """Number of units of execution in the job."""
        return self._rt.n_ues

    @property
    def core(self) -> int:
        """Physical SCC core this UE is mapped onto."""
        return self._rt.core_map[self.ue]

    def wtime(self) -> float:
        """RCCE_wtime(): current simulated wall time in seconds."""
        return self._rt.sim.now

    # -- time modelling ---------------------------------------------------------

    def _stall_penalty(self, seconds: float) -> float:
        """Extra time injected by pending transient core stalls (if any)."""
        injector = getattr(self._rt, "fault_injector", None)
        if injector is None:
            return 0.0
        return injector.consume_stalls(self.ue, self._rt.sim.now, seconds)

    def _tracer(self) -> Any:
        return getattr(self._rt, "tracer", None)

    def _traced(self, gen: CommGen, name: str, **args: Any) -> CommGen:
        """Wrap a communication generator in a begin/end span pair."""
        tr = self._tracer()
        if not tr:
            return gen

        def _wrapped() -> CommGen:
            tr.begin(name, tid=self.ue, cat="rcce", **args)
            try:
                result = yield from gen
            finally:
                tr.end(name, tid=self.ue, cat="rcce")
            return result

        return _wrapped()

    def compute(self, seconds: float) -> CommGen:
        """Model ``seconds`` of local computation (yield from it).

        Injected transient core stalls (fault plans) manifest here: a
        stall scheduled inside the compute window stretches it by the
        stall's duration.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        tr = self._tracer()
        if tr:
            with tr.span("compute", tid=self.ue, cat="rcce", seconds=seconds):
                yield self._rt.sim.timeout(seconds + self._stall_penalty(seconds))
        else:
            yield self._rt.sim.timeout(seconds + self._stall_penalty(seconds))

    def compute_cycles(self, cycles: float) -> CommGen:
        """Model ``cycles`` of work at this core's *current* frequency.

        Unlike :meth:`compute`, the wall time follows the live power
        state: after ``set_power`` the same cycle count takes
        proportionally longer or shorter.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        mhz = self._rt.power.frequency_of_core(self.core)
        if mhz <= 0:
            raise ValueError(f"core {self.core} is power-gated (0 MHz)")
        seconds = cycles / (mhz * 1e6)
        yield self._rt.sim.timeout(seconds + self._stall_penalty(seconds))

    # -- power management (RCCE_iset_power / RCCE_wait_power) -------------

    def set_power(self, mhz: float) -> CommGen:
        """Retune this core's voltage island to ``mhz`` (stalls the UE).

        The change affects all 8 cores of the island, exactly as on the
        chip.  Returns the stall time the UE observed.
        """
        domain = self._rt.power.domain_of_core(self.core)
        stall = self._rt.power.request_transition(domain, mhz)
        yield self._rt.sim.timeout(stall)
        return stall

    # -- point to point ----------------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0) -> CommGen:
        """Blocking (rendezvous) send through the MPB."""
        if not 0 <= dest < self.num_ues:
            raise ValueError(f"dest {dest} out of range [0, {self.num_ues})")
        if dest == self.ue:
            raise ValueError("send to self would deadlock (rendezvous semantics)")
        nbytes = payload_bytes(data)
        tr = self._tracer()
        if tr:
            tr.begin("send", tid=self.ue, cat="rcce", dest=dest, tag=tag, bytes=nbytes)
            self._record_mesh_transfer(dest, nbytes)
        try:
            t = chunked_transfer_time(self._rt.mesh, self.core, self._rt.core_map[dest], nbytes)
            yield self._rt.sim.timeout(t)
            ack = self._rt.sim.event(f"ack:{self.ue}->{dest}")
            self._rt.mailboxes[dest].deliver(Envelope(self.ue, tag, data, ack))
            # Record the rendezvous block so the deadlock detector can name
            # this sender's (peer, tag) in its wait-for graph.
            self._rt.blocked_sends[self.ue] = (dest, tag)
            yield ack
            self._rt.blocked_sends.pop(self.ue, None)
        finally:
            if tr:
                tr.end("send", tid=self.ue, cat="rcce")

    def send_async(self, data: Any, dest: int, tag: int = 0) -> CommGen:
        """Eager (non-rendezvous) send: deliver and return without waiting.

        The transfer still pays full MPB/mesh time, but the sender does
        not block on the receiver's ack — the buffered-send behaviour the
        reliable-messaging layer (:mod:`repro.faults.reliable`) builds
        its own ack/retry protocol on.  A dropped message is therefore
        *lost*, not a hang: callers must tolerate that or use the
        rendezvous :meth:`send`.
        """
        if not 0 <= dest < self.num_ues:
            raise ValueError(f"dest {dest} out of range [0, {self.num_ues})")
        if dest == self.ue:
            raise ValueError("send to self is not supported (use local state)")
        nbytes = payload_bytes(data)
        tr = self._tracer()
        if tr:
            tr.begin("send_async", tid=self.ue, cat="rcce", dest=dest, tag=tag, bytes=nbytes)
            self._record_mesh_transfer(dest, nbytes)
        try:
            t = chunked_transfer_time(self._rt.mesh, self.core, self._rt.core_map[dest], nbytes)
            yield self._rt.sim.timeout(t)
            ack = self._rt.sim.event(f"async-ack:{self.ue}->{dest}")
            self._rt.mailboxes[dest].deliver(Envelope(self.ue, tag, data, ack))
        finally:
            if tr:
                tr.end("send_async", tid=self.ue, cat="rcce")

    def recv(
        self,
        source: Optional[int] = None,
        tag: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> CommGen:
        """Blocking matched receive; returns the payload.

        With ``timeout`` (simulated seconds) the receive raises
        :class:`~repro.rcce.errors.RCCETimeoutError` if no matching
        message arrived in time; a message that lands exactly at the
        deadline wins the race.  Unbounded receives hang forever when the
        peer crashed or the message was lost — fault-tolerant programs
        should always bound their receives (lint rule RCCE130).
        """
        mailbox = self._rt.mailboxes[self.ue]
        tr = self._tracer()
        if tr:
            tr.begin(
                "recv",
                tid=self.ue,
                cat="rcce",
                source=-1 if source is None else source,
                tag=-1 if tag is None else tag,
            )
        try:
            ev = mailbox.receive(source, tag)
            if timeout is None:
                env: Envelope = yield ev
            else:
                if timeout < 0:
                    raise ValueError(f"timeout must be >= 0, got {timeout}")
                sim = self._rt.sim
                timer = sim.timeout(timeout)
                yield any_of(sim, [ev, timer], name=f"recv-race:ue{self.ue}")
                if not ev.triggered:
                    mailbox.cancel_wait(ev)
                    if tr:
                        tr.instant("recv.timeout", tid=self.ue, cat="rcce", timeout=timeout)
                    raise RCCETimeoutError(self.ue, source, tag, timeout, sim.now)
                env = ev.value
            env.ack.succeed()
            return env.payload
        finally:
            if tr:
                tr.end("recv", tid=self.ue, cat="rcce")

    # -- collectives (delegated; kept as methods for API ergonomics) -----------

    def _record_mesh_transfer(self, dest: int, nbytes: int) -> None:
        """Account a traced message on the mesh's per-link counters."""
        topo = self._rt.topology
        src_tile = topo.tile_of_core(self.core)
        dst_tile = topo.tile_of_core(self._rt.core_map[dest])
        self._rt.mesh.record_transfer(
            (src_tile.x, src_tile.y), (dst_tile.x, dst_tile.y), nbytes
        )

    def barrier(self) -> CommGen:
        """RCCE_barrier: synchronize all UEs (yield from it)."""
        from .collectives import barrier

        return self._traced(barrier(self), "barrier")

    def bcast(self, data: Any, root: int = 0) -> CommGen:
        """RCCE_bcast: broadcast ``data`` from ``root`` to every UE."""
        from .collectives import bcast

        return self._traced(bcast(self, data, root), "bcast", root=root)

    def reduce(
        self, value: Any, op: Optional[Callable[[Any, Any], Any]] = None, root: int = 0
    ) -> CommGen:
        """RCCE_reduce: fold values onto ``root`` (None elsewhere)."""
        from .collectives import reduce as _reduce

        return self._traced(_reduce(self, value, op, root), "reduce", root=root)

    def allreduce(self, value: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> CommGen:
        """Reduce then broadcast: every UE gets the folded value."""
        from .collectives import allreduce

        return self._traced(allreduce(self, value, op), "allreduce")

    def gather(self, value: Any, root: int = 0) -> CommGen:
        """Collect one value per UE into a rank-ordered list on ``root``."""
        from .collectives import gather

        return self._traced(gather(self, value, root), "gather", root=root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RCCEComm ue={self.ue}/{self.num_ues} core={self.core}>"
