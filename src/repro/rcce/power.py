"""RCCE power-management API: runtime voltage/frequency control.

The SCC exposes 6 voltage islands (2x2 tiles, 8 cores each) and a
frequency divider per tile; RCCE wraps them in ``RCCE_iset_power`` /
``RCCE_wait_power``.  The paper's Sec. IV-D configurations are *boot*
settings, but the same machinery allows changing core frequency at run
time — this module models it:

- :class:`PowerManager` tracks the live per-tile frequencies and
  per-island voltages of a chip and computes live power;
- frequency-only changes are fast (divider reprogram, microseconds);
  raising voltage stalls the island for ~1 ms (RC ramp), matching the
  asymmetry RCCE documents;
- :meth:`RCCEComm.set_power <repro.rcce.api.RCCEComm>` is wired through
  :meth:`PowerManager.request_transition` by the runtime.

``examples/power_aware_spmv.py`` uses this to race-to-idle a skewed
SpMV: UEs that finish their block early clock their island down.
"""

from __future__ import annotations

from typing import List, Tuple

from ..scc.chip import SCCConfig
from ..scc.params import CORE_FREQS_MHZ
from ..scc.power import chip_power, core_voltage
from ..scc.topology import SCCTopology

__all__ = [
    "N_VOLTAGE_DOMAINS",
    "FREQ_CHANGE_SECONDS",
    "VOLTAGE_RAMP_SECONDS",
    "PowerManager",
]

#: six 2x2-tile voltage islands on the 6x4 mesh.
N_VOLTAGE_DOMAINS = 6

#: reprogramming a tile's frequency divider (fast path).
FREQ_CHANGE_SECONDS = 2e-6
#: ramping an island's voltage up or down (slow path).
VOLTAGE_RAMP_SECONDS = 1e-3


def domain_of_tile(tile_x: int, tile_y: int) -> int:
    """Voltage island of the tile at mesh coordinate (x, y)."""
    return (tile_y // 2) * 3 + (tile_x // 2)


class PowerManager:
    """Live frequency/voltage state of one SCC chip.

    Starts from a boot :class:`SCCConfig`; islands may then be retuned
    at run time.  All mutation goes through
    :meth:`request_transition`, which returns the stall time the
    requesting core observes (the RCCE_wait_power semantics).
    """

    def __init__(self, config: SCCConfig, topology: SCCTopology | None = None) -> None:
        self.topology = topology or SCCTopology()
        self.config = config
        self.tile_mhz: List[float] = list(config.tile_mhz)
        self._domain_voltage: List[float] = [0.0] * N_VOLTAGE_DOMAINS
        for d in range(N_VOLTAGE_DOMAINS):
            self._domain_voltage[d] = self._required_voltage(d)
        #: audit trail of (domain, mhz, stall_seconds) transitions.
        self.transitions: List[Tuple[int, float, float]] = []

    # -- lookups ---------------------------------------------------------

    def domain_of_core(self, core: int) -> int:
        """Voltage island owning this core's tile."""
        t = self.topology.tile_of_core(core)
        return domain_of_tile(t.x, t.y)

    def tiles_of_domain(self, domain: int) -> List[int]:
        """Tile ids of one 2x2 voltage island."""
        if not 0 <= domain < N_VOLTAGE_DOMAINS:
            raise ValueError(f"domain {domain} out of range [0, {N_VOLTAGE_DOMAINS})")
        return [
            t.tile_id
            for t in self.topology.tiles
            if domain_of_tile(t.x, t.y) == domain
        ]

    def frequency_of_core(self, core: int) -> float:
        """Current clock (MHz) of the core's tile."""
        return self.tile_mhz[self.topology.tile_of_core(core).tile_id]

    def voltage_of_domain(self, domain: int) -> float:
        """Current supply voltage of one island."""
        if not 0 <= domain < N_VOLTAGE_DOMAINS:
            raise ValueError(f"domain {domain} out of range [0, {N_VOLTAGE_DOMAINS})")
        return self._domain_voltage[domain]

    def _required_voltage(self, domain: int) -> float:
        freqs = [self.tile_mhz[t] for t in self.tiles_of_domain(domain)]
        return max(core_voltage(f) for f in freqs if f > 0) if any(freqs) else 0.0

    # -- mutation ---------------------------------------------------------

    def request_transition(self, domain: int, mhz: float) -> float:
        """Set every tile of ``domain`` to ``mhz``; returns stall seconds.

        The stall is asymmetric, as on the chip: *raising* voltage must
        complete before the divider can switch up (the requester blocks
        for the ramp), while *lowering* switches the divider first and
        lets the voltage ramp down in the background — the requester
        only pays the divider reprogram.
        """
        if mhz not in CORE_FREQS_MHZ:
            raise ValueError(f"core frequency {mhz} MHz not on the menu {CORE_FREQS_MHZ}")
        old_voltage = self._domain_voltage[domain]
        for t in self.tiles_of_domain(domain):
            self.tile_mhz[t] = mhz
        new_voltage = self._required_voltage(domain)
        self._domain_voltage[domain] = new_voltage
        stall = FREQ_CHANGE_SECONDS
        if new_voltage > old_voltage:
            stall += VOLTAGE_RAMP_SECONDS
        self.transitions.append((domain, mhz, stall))
        return stall

    # -- observation --------------------------------------------------------

    def chip_power(self) -> float:
        """Live full-chip wattage at the current operating points."""
        return chip_power(self.tile_mhz, self.config.mesh_mhz, self.config.mem_mhz)

    def energy_rate_snapshot(self) -> Tuple[Tuple[float, ...], float]:
        """(per-tile MHz, watts) — for integrating energy over intervals."""
        return tuple(self.tile_mhz), self.chip_power()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        uniq = sorted(set(self.tile_mhz))
        return f"<PowerManager tiles@{uniq} MHz, {self.chip_power():.1f} W>"
