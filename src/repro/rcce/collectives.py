"""Collective operations over the point-to-point layer.

All collectives use binomial trees on UE ranks (the algorithms RCCE
ships): ``reduce`` folds up the tree, ``bcast`` fans down, ``barrier``
is a zero-payload reduce+bcast, ``allreduce`` is reduce+bcast of the
result, ``gather`` folds lists up the tree.

Tree communication means collective cost grows with log2(n_ues) mesh
transfers, so mappings that spread UEs across the chip pay more — a
second-order effect of the paper's mapping study that falls out of the
model for free.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, Optional

__all__ = [
    "RESERVED_TAG_BASE",
    "tag_name",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
]

CommGen = Generator[Any, Any, Any]

#: Tags at or above this value are reserved for the collective layer.
#: User point-to-point tags must satisfy ``0 <= tag < RESERVED_TAG_BASE``
#: (negative tags are rejected by the mailbox); the static linter flags
#: literal tags that stray into the reserved range.
RESERVED_TAG_BASE = 1 << 20

#: distinct tag space per collective so user messages never interfere.
_TAG_BARRIER = RESERVED_TAG_BASE + 0
_TAG_BCAST = RESERVED_TAG_BASE + 1
_TAG_REDUCE = RESERVED_TAG_BASE + 2
_TAG_GATHER = RESERVED_TAG_BASE + 3

_TAG_NAMES = {
    _TAG_BARRIER: "collective:barrier",
    _TAG_BCAST: "collective:bcast",
    _TAG_REDUCE: "collective:reduce",
    _TAG_GATHER: "collective:gather",
}


def tag_name(tag: int) -> str:
    """Human-readable name of a tag (reserved tags get their collective)."""
    return _TAG_NAMES.get(tag, str(tag))


def _relative_rank(ue: int, root: int, n: int) -> int:
    return (ue - root) % n


def _absolute_rank(rel: int, root: int, n: int) -> int:
    return (rel + root) % n


def _enter(comm, kind: str, payload: Any) -> None:
    """Notify the runtime checker (if any) that a collective started."""
    hook = getattr(comm, "_enter_collective", None)
    if hook is not None:
        hook(kind, payload)


def _exit(comm) -> None:
    hook = getattr(comm, "_exit_collective", None)
    if hook is not None:
        hook()


def reduce(comm, value: Any, op: Optional[Callable[[Any, Any], Any]] = None, root: int = 0) -> CommGen:
    """Binomial-tree reduction; the result lands on ``root`` (None elsewhere)."""
    if not 0 <= root < comm.num_ues:
        raise ValueError(f"root {root} out of range [0, {comm.num_ues})")
    op = op or operator.add
    n = comm.num_ues
    rel = _relative_rank(comm.ue, root, n)
    _enter(comm, "reduce", value)
    try:
        acc = value
        mask = 1
        while mask < n:
            if rel & mask:
                parent = _absolute_rank(rel & ~mask, root, n)
                yield from comm.send(acc, parent, tag=_TAG_REDUCE)
                return None
            partner_rel = rel | mask
            if partner_rel < n:
                child = _absolute_rank(partner_rel, root, n)
                other = yield from comm.recv(child, tag=_TAG_REDUCE)
                acc = op(acc, other)
            mask <<= 1
        return acc
    finally:
        _exit(comm)


def bcast(comm, value: Any, root: int = 0) -> CommGen:
    """Binomial-tree broadcast; every UE returns the root's value.

    Standard MPI algorithm: a non-root rank receives from the rank that
    differs in its lowest set bit, then both fan out to progressively
    lower bits.
    """
    if not 0 <= root < comm.num_ues:
        raise ValueError(f"root {root} out of range [0, {comm.num_ues})")
    n = comm.num_ues
    rel = _relative_rank(comm.ue, root, n)
    _enter(comm, "bcast", value)
    try:
        data = value
        mask = 1
        while mask < n:
            if rel & mask:
                parent = _absolute_rank(rel - mask, root, n)
                data = yield from comm.recv(parent, tag=_TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            child_rel = rel + mask
            if child_rel < n:
                yield from comm.send(data, _absolute_rank(child_rel, root, n), tag=_TAG_BCAST)
            mask >>= 1
        return data
    finally:
        _exit(comm)


def barrier(comm) -> CommGen:
    """All UEs synchronize; returns when every UE has entered."""
    _enter(comm, "barrier", None)
    try:
        token = yield from reduce(comm, 0, operator.add, root=0)
        yield from bcast(comm, token, root=0)
        return None
    finally:
        _exit(comm)


def allreduce(comm, value: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> CommGen:
    """Reduce to UE 0, then broadcast the result to everyone."""
    _enter(comm, "allreduce", value)
    try:
        acc = yield from reduce(comm, value, op, root=0)
        result = yield from bcast(comm, acc, root=0)
        return result
    finally:
        _exit(comm)


def gather(comm, value: Any, root: int = 0) -> CommGen:
    """Gather one value per UE into a rank-ordered list on ``root``.

    Implemented as a binomial-tree fold of (rank, value) pairs; non-root
    UEs return None.
    """
    _enter(comm, "gather", value)
    try:
        pairs = yield from reduce(comm, [(comm.ue, value)], operator.add, root=root)
        if pairs is None:
            return None
        pairs.sort(key=lambda rv: rv[0])
        return [v for _, v in pairs]
    finally:
        _exit(comm)
