"""Message-passing buffer (MPB) model and matched mailboxes.

Every SCC tile holds a 16 KB message-passing buffer (8 KB per core) —
the only on-die memory cores can share (paper Sec. II).  RCCE moves
messages through it in MPB-sized chunks.  We model:

* **capacity** — transfers are serialized in ``MPB_BYTES_PER_CORE``
  chunks (a 1 MB message costs 128 chunk round-trips);
* **timing** — each chunk pays the mesh route time for its size
  (:meth:`repro.scc.mesh.MeshNetwork.message_time`);
* **matching** — :class:`Mailbox` implements (source, tag) matched
  delivery with rendezvous acknowledgement, which is how the RCCE
  blocking send/recv pair behaves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..sim import SimEvent, Simulator
from .errors import RCCEError

__all__ = ["MPB_BYTES_PER_CORE", "chunked_transfer_time", "Envelope", "Mailbox"]

#: 8 KB of MPB per core (16 KB per tile shared by its two cores).
MPB_BYTES_PER_CORE = 8 * 1024


def chunked_transfer_time(mesh, src_core: int, dst_core: int, nbytes: int) -> float:
    """Seconds to move ``nbytes`` through the MPB in 8 KB chunks.

    Chunks are strictly sequential: the single per-core buffer must be
    drained by the receiver before the next chunk is written, which is
    the dominant cost of large RCCE messages on the real chip.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return mesh.core_message_time(src_core, dst_core, 0)
    full, rem = divmod(nbytes, MPB_BYTES_PER_CORE)
    t = full * mesh.core_message_time(src_core, dst_core, MPB_BYTES_PER_CORE)
    if rem:
        t += mesh.core_message_time(src_core, dst_core, rem)
    return t


@dataclass
class Envelope:
    """One in-flight message."""

    source: int
    tag: int
    payload: Any
    ack: SimEvent = field(repr=False)


class Mailbox:
    """Per-UE matched receive queue with rendezvous semantics.

    ``deliver`` enqueues an envelope (or hands it straight to a waiting
    matching receiver).  ``receive`` returns an event that triggers with
    the envelope once a match exists; the receiver must call
    ``envelope.ack.succeed()`` to release the blocked sender.

    ``n_peers`` (when known) bounds the valid source ranks so a recv
    naming a nonexistent peer raises :class:`~repro.rcce.errors.RCCEError`
    immediately instead of hanging the job.  Negative tags are rejected
    unconditionally: the runtime reserves a positive high-tag range for
    collectives (see :mod:`repro.rcce.collectives`) and user tags must
    be non-negative.

    Fault hooks: an attached :class:`~repro.faults.injector.FaultInjector`
    decides, per delivery, whether the envelope is dropped, duplicated or
    corrupted (the SCC's flaky-mesh failure modes); ``failed_at`` marks
    the owning core dead, after which deliveries are blackholed exactly
    as a message to a crashed core would be; ``on_deliver`` is observed
    by the reliable-messaging layer to acknowledge arrivals (modelling
    its interrupt-driven comm driver) without involving the UE process.
    """

    def __init__(
        self,
        sim: Simulator,
        owner: int,
        n_peers: Optional[int] = None,
        checker: Optional[Any] = None,
        injector: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.owner = owner
        self.n_peers = n_peers
        self.checker = checker
        self.injector = injector
        #: optional :class:`repro.obs.Tracer`: queued-envelope occupancy
        #: (the model's MPB pressure signal) is sampled on every change.
        self.tracer = tracer
        #: simulated time at which the owning core died (None = alive).
        self.failed_at: Optional[float] = None
        #: observer invoked with every envelope that is actually queued
        #: or handed to a receiver (after fault injection).
        self.on_deliver: Optional[Callable[[Envelope], None]] = None
        self._pending: Deque[Envelope] = deque()
        self._waiting: Deque[Tuple[Optional[int], Optional[int], SimEvent]] = deque()

    @staticmethod
    def _matches(env: Envelope, source: Optional[int], tag: Optional[int]) -> bool:
        return (source is None or env.source == source) and (tag is None or env.tag == tag)

    def _validate(self, source: Optional[int], tag: Optional[int], op: str) -> None:
        if tag is not None and tag < 0:
            raise RCCEError(
                f"mailbox[{self.owner}].{op}: negative tag {tag} is invalid "
                f"(user tags must be >= 0)"
            )
        if source is not None and self.n_peers is not None:
            if not 0 <= source < self.n_peers:
                raise RCCEError(
                    f"mailbox[{self.owner}].{op}: peer rank {source} does not "
                    f"exist (job has UEs 0..{self.n_peers - 1})"
                )

    def deliver(self, env: Envelope) -> None:
        """Enqueue an envelope or hand it to a waiting matching receiver.

        When the owning core has failed, the envelope is blackholed (the
        sender's rendezvous ack never fires — exactly the hang a message
        to a crashed core produces on the chip).  When a fault injector
        is attached it may drop, duplicate or corrupt the delivery.
        """
        self._validate(env.source, env.tag, "deliver")
        if self.failed_at is not None:
            if self.injector is not None:
                self.injector.on_blackhole(env.source, self.owner, env.tag, self.sim.now)
            return
        if self.injector is not None:
            fate = self.injector.message_fate(env.source, self.owner, env.tag, self.sim.now)
            if fate == "drop":
                return
            if fate == "corrupt":
                env = Envelope(
                    env.source,
                    env.tag,
                    self.injector.corrupt_payload(env.payload),
                    env.ack,
                )
            elif fate == "duplicate":
                # The copy carries its own ack event: only the original's
                # ack releases a rendezvous sender, and acking the copy
                # must not double-trigger it.
                copy = Envelope(
                    env.source,
                    env.tag,
                    env.payload,
                    self.sim.event(f"dup-ack:{env.source}->{self.owner}"),
                )
                self._deliver_one(env)
                self._deliver_one(copy)
                return
        self._deliver_one(env)

    def _occupancy_changed(self) -> None:
        tr = self.tracer
        if tr:
            depth = len(self._pending)
            tr.counter("mpb.pending", depth, tid=self.owner)
            tr.metrics.gauge("mpb.pending", ue=self.owner).set(depth)

    def _deliver_one(self, env: Envelope) -> None:
        if self.on_deliver is not None:
            self.on_deliver(env)
        tr = self.tracer
        if tr:
            tr.metrics.counter("mpb.delivered", ue=self.owner).inc()
        for i, (src, tag, ev) in enumerate(self._waiting):
            if self._matches(env, src, tag):
                del self._waiting[i]
                ev.succeed(env)
                return
        if self.checker is not None:
            for queued in self._pending:
                if queued.source == env.source and queued.tag == env.tag:
                    self.checker.on_mailbox_race(
                        self.owner, env.source, env.tag, self.sim.now
                    )
                    break
        self._pending.append(env)
        self._occupancy_changed()

    def receive(self, source: Optional[int] = None, tag: Optional[int] = None) -> SimEvent:
        """Event that triggers with the next (source, tag)-matching envelope."""
        self._validate(source, tag, "receive")
        ev = self.sim.event(f"mailbox[{self.owner}].recv")
        for i, env in enumerate(self._pending):
            if self._matches(env, source, tag):
                del self._pending[i]
                self._occupancy_changed()
                ev.succeed(env)
                return ev
        self._waiting.append((source, tag, ev))
        return ev

    def cancel_wait(self, ev: SimEvent) -> bool:
        """Withdraw a still-blocked receive (a timed recv that expired).

        Returns False when the request was not waiting — either it was
        never registered or a message already matched it, in which case
        the caller must consume the event's envelope instead of
        abandoning it (abandoning would silently lose the message).
        """
        for i, (_src, _tag, waiting_ev) in enumerate(self._waiting):
            if waiting_ev is ev:
                del self._waiting[i]
                return True
        return False

    @property
    def pending_count(self) -> int:
        """Number of undelivered envelopes queued in this mailbox."""
        return len(self._pending)

    def waiting_requests(self) -> List[Tuple[Optional[int], Optional[int]]]:
        """(source, tag) of every receive still blocked in this mailbox.

        The deadlock detector reads this to build its wait-for graph.
        """
        return [(src, tag) for src, tag, _ev in self._waiting]
