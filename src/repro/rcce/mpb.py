"""Message-passing buffer (MPB) model and matched mailboxes.

Every SCC tile holds a 16 KB message-passing buffer (8 KB per core) —
the only on-die memory cores can share (paper Sec. II).  RCCE moves
messages through it in MPB-sized chunks.  We model:

* **capacity** — transfers are serialized in ``MPB_BYTES_PER_CORE``
  chunks (a 1 MB message costs 128 chunk round-trips);
* **timing** — each chunk pays the mesh route time for its size
  (:meth:`repro.scc.mesh.MeshNetwork.message_time`);
* **matching** — :class:`Mailbox` implements (source, tag) matched
  delivery with rendezvous acknowledgement, which is how the RCCE
  blocking send/recv pair behaves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional, Tuple

from ..sim import SimEvent, Simulator

__all__ = ["MPB_BYTES_PER_CORE", "chunked_transfer_time", "Envelope", "Mailbox"]

#: 8 KB of MPB per core (16 KB per tile shared by its two cores).
MPB_BYTES_PER_CORE = 8 * 1024


def chunked_transfer_time(mesh, src_core: int, dst_core: int, nbytes: int) -> float:
    """Seconds to move ``nbytes`` through the MPB in 8 KB chunks.

    Chunks are strictly sequential: the single per-core buffer must be
    drained by the receiver before the next chunk is written, which is
    the dominant cost of large RCCE messages on the real chip.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return mesh.core_message_time(src_core, dst_core, 0)
    full, rem = divmod(nbytes, MPB_BYTES_PER_CORE)
    t = full * mesh.core_message_time(src_core, dst_core, MPB_BYTES_PER_CORE)
    if rem:
        t += mesh.core_message_time(src_core, dst_core, rem)
    return t


@dataclass
class Envelope:
    """One in-flight message."""

    source: int
    tag: int
    payload: Any
    ack: SimEvent = field(repr=False)


class Mailbox:
    """Per-UE matched receive queue with rendezvous semantics.

    ``deliver`` enqueues an envelope (or hands it straight to a waiting
    matching receiver).  ``receive`` returns an event that triggers with
    the envelope once a match exists; the receiver must call
    ``envelope.ack.succeed()`` to release the blocked sender.
    """

    def __init__(self, sim: Simulator, owner: int) -> None:
        self.sim = sim
        self.owner = owner
        self._pending: Deque[Envelope] = deque()
        self._waiting: Deque[Tuple[Optional[int], Optional[int], SimEvent]] = deque()

    @staticmethod
    def _matches(env: Envelope, source: Optional[int], tag: Optional[int]) -> bool:
        return (source is None or env.source == source) and (tag is None or env.tag == tag)

    def deliver(self, env: Envelope) -> None:
        """Enqueue an envelope or hand it to a waiting matching receiver."""
        for i, (src, tag, ev) in enumerate(self._waiting):
            if self._matches(env, src, tag):
                del self._waiting[i]
                ev.succeed(env)
                return
        self._pending.append(env)

    def receive(self, source: Optional[int] = None, tag: Optional[int] = None) -> SimEvent:
        """Event that triggers with the next (source, tag)-matching envelope."""
        ev = self.sim.event(f"mailbox[{self.owner}].recv")
        for i, env in enumerate(self._pending):
            if self._matches(env, source, tag):
                del self._pending[i]
                ev.succeed(env)
                return ev
        self._waiting.append((source, tag, ev))
        return ev

    @property
    def pending_count(self) -> int:
        """Number of undelivered envelopes queued in this mailbox."""
        return len(self._pending)
