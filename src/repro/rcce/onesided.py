"""One-sided MPB operations: RCCE's actual low-level layer.

The send/recv of :mod:`repro.rcce.api` is itself built, on the real
chip, from one-sided primitives: ``RCCE_put`` writes into a remote
core's message-passing buffer, ``RCCE_get`` reads from it, and *flags*
(single bytes in the MPB polled by the consumer) provide
synchronization.  This module models that layer faithfully enough to
write the textbook RCCE exercises against it:

- :class:`MPBWindow` — each core's 8 KB buffer with explicit
  offset-addressed storage and capacity enforcement;
- :class:`OneSided` — put/get with mesh-timed transfers, flag
  set/poll with a configurable polling interval (polling is how the
  real library spins, and it costs simulated time).

The higher-level comm API remains the recommended surface; the tests
rebuild send/recv from these primitives to show they compose.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from .api import payload_bytes
from .mpb import MPB_BYTES_PER_CORE

__all__ = ["MPBWindow", "OneSided", "FLAG_CLEAR", "FLAG_SET"]

FLAG_CLEAR = 0
FLAG_SET = 1

#: how often a blocked flag poll re-reads the remote MPB (seconds).
#: The real library spins on its local MPB copy; polling a remote flag
#: costs a mesh round trip, so RCCE keeps flags on the consumer side.
DEFAULT_POLL_INTERVAL = 0.5e-6


class MPBWindow:
    """One core's 8 KB message-passing buffer.

    Offset-addressed storage for payloads and flags.  Capacity is
    enforced on payload size, mirroring the hard 8 KB limit that forces
    RCCE to chunk large messages.
    """

    def __init__(
        self,
        owner: int,
        size: int = MPB_BYTES_PER_CORE,
        on_overwrite: Optional[Callable[[int, int, int, int], None]] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"MPB size must be positive, got {size}")
        self.owner = owner
        self.size = size
        self._data: Dict[int, Any] = {}
        self._flags: Dict[int, int] = {}
        #: offsets written since their last read — an overwrite of one of
        #: these is a data race (the producer clobbered undrained data).
        self._unread: set[int] = set()
        self._on_overwrite = on_overwrite

    def write(self, offset: int, payload: Any) -> None:
        """Store a payload at ``offset``; enforces the 8 KB capacity."""
        nbytes = payload_bytes(payload)
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside MPB [0, {self.size})")
        if offset + nbytes > self.size:
            raise ValueError(
                f"payload of {nbytes} B at offset {offset} overflows the "
                f"{self.size} B MPB — chunk it"
            )
        if offset in self._unread and self._on_overwrite is not None:
            self._on_overwrite(
                self.owner, offset, payload_bytes(self._data[offset]), nbytes
            )
        self._data[offset] = payload
        self._unread.add(offset)

    def read(self, offset: int) -> Any:
        """Return the payload stored at ``offset`` (KeyError if empty)."""
        if offset not in self._data:
            raise KeyError(f"MPB[{self.owner}] has no payload at offset {offset}")
        self._unread.discard(offset)
        return self._data[offset]

    def set_flag(self, flag_id: int, value: int) -> None:
        """Set a synchronization flag byte."""
        self._flags[flag_id] = value

    def flag(self, flag_id: int) -> int:
        """Current value of a flag (FLAG_CLEAR if never written)."""
        return self._flags.get(flag_id, FLAG_CLEAR)


class OneSided:
    """Put/get/flag operations over the mesh model.

    All methods are generators (``yield from`` them inside a UE); each
    charges the mesh time of the transfer it models.
    """

    def __init__(self, runtime: Any) -> None:
        self._rt = runtime
        checker = getattr(runtime, "checker", None)
        on_overwrite = None
        if checker is not None:

            def on_overwrite(owner: int, offset: int, old_n: int, new_n: int) -> None:
                checker.on_mpb_overwrite(owner, offset, old_n, new_n, runtime.sim.now)

        self.windows = [
            MPBWindow(core, on_overwrite=on_overwrite) for core in runtime.core_map
        ]

    def _transfer_time(self, src_ue: int, dst_ue: int, nbytes: int) -> float:
        return self._rt.mesh.core_message_time(
            self._rt.core_map[src_ue], self._rt.core_map[dst_ue], nbytes
        )

    def put(self, src_ue: int, dst_ue: int, offset: int, payload: Any) -> Generator[Any, Any, Any]:
        """Write ``payload`` into ``dst_ue``'s MPB at ``offset``."""
        t = self._transfer_time(src_ue, dst_ue, payload_bytes(payload))
        yield self._rt.sim.timeout(t)
        self.windows[dst_ue].write(offset, payload)

    def get(self, src_ue: int, dst_ue: int, offset: int) -> Generator[Any, Any, Any]:
        """Read from ``dst_ue``'s MPB at ``offset``; returns the payload."""
        payload = self.windows[dst_ue].read(offset)
        t = self._transfer_time(dst_ue, src_ue, payload_bytes(payload))
        yield self._rt.sim.timeout(t)
        return payload

    def set_flag(self, src_ue: int, dst_ue: int, flag_id: int, value: int = FLAG_SET) -> Generator[Any, Any, Any]:
        """Write a one-byte flag in ``dst_ue``'s MPB (releases pollers)."""
        t = self._transfer_time(src_ue, dst_ue, 1)
        yield self._rt.sim.timeout(t)
        self.windows[dst_ue].set_flag(flag_id, value)

    def wait_flag(
        self,
        ue: int,
        flag_id: int,
        value: int = FLAG_SET,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, Any]:
        """Spin on a local flag until it reads ``value``.

        Polling quantizes the wake-up to ``poll_interval`` — the
        latency cost of flag-based synchronization the RCCE paper
        documents.  ``timeout`` (simulated seconds) raises on expiry so
        protocol bugs surface as errors, not hangs.
        """
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        window = self.windows[ue]
        waited = 0.0
        while window.flag(flag_id) != value:
            yield self._rt.sim.timeout(poll_interval)
            waited += poll_interval
            if timeout is not None and waited > timeout:
                raise TimeoutError(
                    f"UE {ue} timed out after {waited:.2e}s polling flag "
                    f"{flag_id} for value {value}"
                )
        return window.flag(flag_id)
