"""Feature extraction for ``mode="predict"``: matrix → vector.

The predictor (:mod:`repro.predict`) answers in microseconds what the
analytic model computes in milliseconds, and it can only do that
because the expensive part of a model run — the HOTL cache
characterization, O(nnz) per (matrix, machine, core count) — is
replaced by *structural features* computed once per matrix and reused
across every machine, core count, mapping and frequency point.

The extraction is layered to match that reuse:

* :class:`MatrixFeatures` — one O(nnz) pass over the pattern
  (:mod:`repro.sparse.stats` kernels): nnz/row moments + histogram,
  bandwidth/profile, block density, reuse proxies, plus the per-row
  column extents that later partition features reduce over;
* :func:`partition_features` — O(n_parts) per (matrix, core count):
  per-core nnz/row imbalance and ``x``-span footprints, reduced from
  the cached row extents;
* :func:`point_features` — O(n_cores) per point: machine clocks and
  cache-pressure ratios, mapping/topology placement (hops to the
  memory controller, per-MC load), kernel/iteration knobs.

``FEATURE_NAMES`` fixes the vector layout; ``FEATURE_SCHEMA_VERSION``
is baked into every trained artifact and training-set store key so a
layout change orphans stale models instead of silently misreading them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .csr import CSRMatrix
from .partition import RowPartition
from .stats import (
    ROW_LENGTH_EDGES,
    bandwidth_stats,
    block_density,
    partition_spans,
    reuse_proxies,
    row_extents,
    working_set_bytes,
)

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "FEATURE_NAMES",
    "MatrixFeatures",
    "matrix_features",
    "partition_features",
    "point_features",
]

#: bump whenever :data:`FEATURE_NAMES` (or any kernel's meaning)
#: changes — it participates in model-artifact and training-set store
#: keys, so old entries are orphaned rather than misinterpreted.
FEATURE_SCHEMA_VERSION = 1

_HIST_NAMES = [f"rowlen_hist_{i}" for i in range(len(ROW_LENGTH_EDGES) + 1)]

#: the full feature vector layout, in order.  Matrix-level features
#: first (constant per matrix), then partition-level (per core count),
#: then point-level (machine/config/mapping/kernel).
FEATURE_NAMES: List[str] = [
    # -- matrix level ----------------------------------------------------
    "log_n",
    "log_nnz",
    "log_density",
    "rowlen_mean",
    "rowlen_cv",
    "rowlen_max_frac",
    *_HIST_NAMES,
    "bw_mean_dist",
    "bw_max_dist",
    "bw_band_mean",
    "bw_profile_frac",
    "block_fill",
    "block_cv",
    "reuse_col",
    "reuse_line",
    "reuse_adj_gap",
    # -- partition level (per core count) --------------------------------
    "part_nnz_cv",
    "part_nnz_max_frac",
    "part_rows_cv",
    "part_rows_max_frac",
    "part_span_mean",
    "part_span_max",
    # -- point level (machine / config / mapping / kernel) ---------------
    "log_n_cores",
    "log_iterations",
    "log_core_mhz",
    "log_mesh_mhz",
    "log_mem_mhz",
    "log_core_per_mem",
    "l2_enabled",
    "kernel_no_x_miss",
    "map_hops_mean",
    "map_hops_max",
    "mc_load_cv",
    "mc_load_max_frac",
    "log_ws_part_l1",
    "log_ws_part_l2",
    "log_span_bytes_l1",
]


def _log(v: float) -> float:
    return float(np.log(max(float(v), 1e-12)))


@dataclass(frozen=True)
class MatrixFeatures:
    """One matrix's structural features plus the cached row extents.

    ``vector`` holds the matrix-level prefix of :data:`FEATURE_NAMES`;
    ``row_min_col``/``row_max_col`` are kept so partition reductions
    cost O(n_parts), not O(nnz).
    """

    vector: np.ndarray
    row_min_col: np.ndarray
    row_max_col: np.ndarray
    n: int
    nnz: int


#: matrix- and partition-level features depend only on the sparsity
#: pattern (and the row split), never on the machine — so one matrix
#: swept over the whole machine zoo pays its O(nnz) pass exactly once.
#: Keyed by object identity with the matrix kept alive in the entry
#: (recycled ids cannot alias); bounded FIFO so a long-lived serve
#: process cannot grow without limit.
_MF_MEMO: "OrderedDict[int, tuple]" = OrderedDict()
_PF_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_MEMO_CAP = 64


def matrix_features(a: CSRMatrix) -> MatrixFeatures:
    """The single O(nnz) extraction pass over one matrix (memoized)."""
    entry = _MF_MEMO.get(id(a))
    if entry is not None and entry[0] is a:
        return entry[1]
    mf = _matrix_features(a)
    _MF_MEMO[id(a)] = (a, mf)
    while len(_MF_MEMO) > _MEMO_CAP:
        _MF_MEMO.popitem(last=False)
    return mf


def _matrix_features(a: CSRMatrix) -> MatrixFeatures:
    lengths = a.row_lengths().astype(float)
    mean = lengths.mean() if a.n_rows else 0.0
    cv = float(lengths.std() / mean) if mean > 0 else 0.0
    max_frac = float(lengths.max() / mean) if mean > 0 else 0.0
    extents = row_extents(a)
    row_min, row_max, _ = extents
    bw = bandwidth_stats(a, extents=extents)
    bd = block_density(a)
    ru = reuse_proxies(a)
    from .stats import row_length_histogram

    hist = row_length_histogram(a)
    density = a.nnz / (a.n_rows * a.n_cols) if a.n_rows and a.n_cols else 0.0
    vec = np.array(
        [
            _log(a.n_rows),
            _log(a.nnz),
            _log(density),
            mean,
            cv,
            max_frac,
            *hist.tolist(),
            bw["mean_dist"],
            bw["max_dist"],
            bw["band_mean"],
            bw["profile_frac"],
            bd["fill"],
            bd["cv"],
            _log(ru["col_reuse"]),
            _log(ru["line_reuse"]),
            _log(1.0 + ru["adj_gap"]),
        ]
    )
    return MatrixFeatures(
        vector=vec,
        row_min_col=row_min,
        row_max_col=row_max,
        n=a.n_rows,
        nnz=a.nnz,
    )


@dataclass(frozen=True)
class PartitionFeatures:
    """Per-(matrix, core count) features + aggregates the point level needs."""

    vector: np.ndarray
    mean_span_elems: float
    max_span_elems: float
    n_parts: int


def partition_features(
    a: CSRMatrix, partition: RowPartition, mf: MatrixFeatures
) -> PartitionFeatures:
    """O(n_parts) reduction of the cached row extents over one partition.

    Memoized on ``(matrix identity, partition bounds)`` — the split is
    machine-independent, so the zoo shares one reduction per core count.
    """
    key = (id(a), partition.bounds)
    entry = _PF_MEMO.get(key)
    if entry is not None and entry[0] is a:
        return entry[1]
    pf = _partition_features(a, partition, mf)
    _PF_MEMO[key] = (a, pf)
    while len(_PF_MEMO) > _MEMO_CAP * 8:
        _PF_MEMO.popitem(last=False)
    return pf


def _partition_features(
    a: CSRMatrix, partition: RowPartition, mf: MatrixFeatures
) -> PartitionFeatures:
    from .stats import partition_imbalance

    imb = partition_imbalance(a, partition)
    spans = partition_spans(a, partition, mf.row_min_col, mf.row_max_col)
    n = max(mf.n, 1)
    mean_span = float(spans.mean()) if spans.size else 0.0
    max_span = float(spans.max()) if spans.size else 0.0
    vec = np.array(
        [
            imb["nnz_cv"],
            imb["nnz_max_frac"],
            imb["rows_cv"],
            imb["rows_max_frac"],
            mean_span / n,
            max_span / n,
        ]
    )
    return PartitionFeatures(
        vector=vec,
        mean_span_elems=mean_span,
        max_span_elems=max_span,
        n_parts=partition.n_parts,
    )


#: per-object memos for machine-level constants (topology hop/MC maps,
#: per-core clocks of a config).  Keyed by object identity with the
#: object kept alive in the entry, so a recycled ``id`` cannot alias —
#: machines and their presets are long-lived registry singletons.
_TOPO_MEMO: dict = {}
_CLOCK_MEMO: dict = {}


def _topo_arrays(machine) -> "tuple[np.ndarray, np.ndarray]":
    entry = _TOPO_MEMO.get(id(machine))
    if entry is not None and entry[0] is machine:
        return entry[1], entry[2]
    topo = machine.topology
    hops = np.array([topo.hops_to_mc(c) for c in range(machine.n_cores)], dtype=float)
    mcs = np.array(
        [topo.mc_index_of_core(c) for c in range(machine.n_cores)], dtype=np.int64
    )
    _TOPO_MEMO[id(machine)] = (machine, hops, mcs)
    return hops, mcs


def _clock_array(machine, config) -> np.ndarray:
    entry = _CLOCK_MEMO.get(id(config))
    if entry is not None and entry[0] is config:
        return entry[1]
    mhz = np.array(
        [config.core_mhz_of_core(c) for c in range(machine.n_cores)], dtype=float
    )
    _CLOCK_MEMO[id(config)] = (config, mhz)
    return mhz


def point_features(
    mf: MatrixFeatures,
    pf: PartitionFeatures,
    machine,
    config,
    core_map: Sequence[int],
    kernel: str,
    iterations: int,
) -> np.ndarray:
    """Assemble the full feature vector for one campaign point.

    ``machine`` is a :class:`repro.machine.base.MachineModel`;
    ``config`` one of its presets.  Cost is O(n_cores) — array gathers
    over memoized per-machine topology/clock maps — so a full sweep's
    point features are negligible next to even one partition pass.
    """
    n_cores = len(core_map)
    hops_all, mcs_all = _topo_arrays(machine)
    cm = np.asarray(core_map, dtype=np.intp)
    hops = hops_all[cm]
    mc_load = np.bincount(mcs_all[cm]).astype(float)
    mc_load = mc_load[mc_load > 0]
    mc_mean = mc_load.mean() if mc_load.size else 0.0
    cache = machine.cache
    ws_part = working_set_bytes(mf.n, mf.nnz) / max(n_cores, 1)
    span_bytes = pf.mean_span_elems * 8.0
    # mean mapped-core clock: exact for uniform configs, and the right
    # aggregate for the SCC's per-tile frequency vectors.
    core_mhz = float(_clock_array(machine, config)[cm].mean()) if n_cores else 0.0
    point = np.array(
        [
            _log(n_cores),
            _log(iterations),
            _log(core_mhz),
            _log(config.mesh_mhz),
            _log(config.mem_mhz),
            _log(core_mhz / max(config.mem_mhz, 1e-12)),
            1.0 if config.l2_enabled else 0.0,
            1.0 if kernel == "no_x_miss" else 0.0,
            float(hops.mean()) if hops.size else 0.0,
            float(hops.max()) if hops.size else 0.0,
            float(mc_load.std() / mc_mean) if mc_mean > 0 else 0.0,
            float(mc_load.max() / mc_mean) if mc_mean > 0 else 1.0,
            _log(ws_part / max(cache.l1_bytes, 1)),
            _log(ws_part / max(cache.l2_bytes, 1)),
            _log(max(span_bytes, 1.0) / max(cache.l1_bytes, 1)),
        ]
    )
    vec = np.concatenate([mf.vector, pf.vector, point])
    if vec.size != len(FEATURE_NAMES):  # pragma: no cover - layout guard
        raise AssertionError(
            f"feature vector has {vec.size} entries, schema names "
            f"{len(FEATURE_NAMES)} — update FEATURE_NAMES and bump "
            "FEATURE_SCHEMA_VERSION together"
        )
    return vec
