"""NumPy-vectorized analytic SpMV timing: the campaign fast path.

The event-driven simulator reproduces every synchronization event of a
run, which is the right tool for protocol studies but a slow way to
sweep the paper's figure grids (cores x mappings x configs x the whole
Table I suite).  Analytic bandwidth/latency models are known to predict
SpMV scaling well (Schubert/Hager/Fehske, arXiv:0910.4836; Chen et al.,
arXiv:1911.08779), and our per-core model is *already* analytic — only
the barrier replay runs through the simulator.  This module batches the
per-core arithmetic over all UEs at once:

* :func:`batch_traces` columnizes per-UE stream characterizations into
  arrays;
* :func:`batch_access_summaries` applies the three cache regimes of
  :func:`repro.core.trace.access_summary` (L2-resident / streaming /
  L2-off) to every UE in one vectorized pass;
* :func:`base_compute_times`, :func:`memory_latencies` and
  :func:`equilibrium_line_times` vectorize the P54C cycle composition,
  the Eq. 1 latency and the per-controller bandwidth equilibrium of
  :mod:`repro.core.timing`.

Everything here is pure array math — no topology, chip or runtime
imports — so the layer below :mod:`repro.core` stays dependency-clean.
The glue that feeds it cores/frequencies/hop counts lives in
:func:`repro.core.timing.solve_core_times_batched`; the differential
test harness (``tests/test_differential_fastpath.py``) pins the fast
path against the event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "BatchedTraces",
    "BatchedSummaries",
    "batch_traces",
    "batch_access_summaries",
    "base_compute_times",
    "memory_latencies",
    "equilibrium_line_times",
]


@dataclass(frozen=True)
class BatchedTraces:
    """Columnized per-UE stream characterizations (one array per field).

    Built from any sequence of objects exposing the
    :class:`repro.core.trace.UETrace` fields; kept duck-typed so this
    module does not import upward into :mod:`repro.core`.
    """

    nnz: np.ndarray               #: int64, nonzeros per UE
    rows: np.ndarray              #: int64, rows per UE
    stream_lines: np.ndarray      #: float64, stream L1-miss lines / iter
    x_l1_misses: np.ndarray       #: float64, gather misses at L1 capacity
    x_l2_misses: np.ndarray       #: float64, gather misses at L2 capacity
    x_distinct_lines: np.ndarray  #: float64, distinct x lines touched
    ws_bytes: np.ndarray          #: float64, per-UE working set

    @property
    def n_ues(self) -> int:
        """Number of UEs in the batch."""
        return int(self.nnz.size)


@dataclass(frozen=True)
class BatchedSummaries:
    """Vectorized :class:`repro.scc.core_model.AccessSummary` columns."""

    nnz: np.ndarray        #: int64
    rows: np.ndarray       #: int64
    iterations: int
    l2_hits: np.ndarray    #: float64, total L1-miss/L2-hit count
    l2_misses: np.ndarray  #: float64, total memory line fetches

    @property
    def n_ues(self) -> int:
        """Number of UEs in the batch."""
        return int(self.nnz.size)


def batch_traces(traces: Iterable[Any]) -> BatchedTraces:
    """Columnize UETrace-like records into one :class:`BatchedTraces`."""
    ts = list(traces)
    return BatchedTraces(
        nnz=np.array([t.nnz for t in ts], dtype=np.int64),
        rows=np.array([t.rows for t in ts], dtype=np.int64),
        stream_lines=np.array([t.stream_lines for t in ts], dtype=np.float64),
        x_l1_misses=np.array([t.x_l1_misses for t in ts], dtype=np.float64),
        x_l2_misses=np.array([t.x_l2_misses for t in ts], dtype=np.float64),
        x_distinct_lines=np.array([t.x_distinct_lines for t in ts], dtype=np.float64),
        ws_bytes=np.array([t.ws_bytes for t in ts], dtype=np.float64),
    )


def batch_access_summaries(
    traces: BatchedTraces,
    iterations: int,
    l2_enabled: bool = True,
    no_x_miss: bool = False,
    l2_bytes: int = 256 * 1024,
) -> BatchedSummaries:
    """Vectorized fold of per-iteration traces into run totals.

    Mirrors :func:`repro.core.trace.access_summary` element-wise — the
    same three regimes, the same arithmetic — evaluated for every UE at
    once.  The default ``l2_bytes`` matches
    :data:`repro.scc.params.L2_BYTES`; callers pass it explicitly to
    stay in sync with their chip parameters.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    zeros = np.zeros_like(traces.stream_lines)
    x_l1 = zeros if no_x_miss else traces.x_l1_misses
    x_l2 = zeros if no_x_miss else traces.x_l2_misses
    x_cold = zeros if no_x_miss else traces.x_distinct_lines
    cold = traces.stream_lines + x_cold

    if not l2_enabled:
        mem = (traces.stream_lines + x_l1) * iterations
        l2_hits = zeros
    else:
        resident = traces.ws_bytes <= l2_bytes
        per_iter_l1 = traces.stream_lines + x_l1
        mem = np.where(
            resident,
            cold,
            (traces.stream_lines + x_l2) * iterations,
        )
        l2_hits = np.where(
            resident,
            np.maximum(per_iter_l1 * iterations - cold, 0.0),
            np.maximum(x_l1 - x_l2, 0.0) * iterations,
        )

    return BatchedSummaries(
        nnz=traces.nnz,
        rows=traces.rows,
        iterations=iterations,
        l2_hits=l2_hits,
        l2_misses=mem,
    )


def base_compute_times(
    summaries: BatchedSummaries,
    core_mhz: np.ndarray,
    timing: Any,
) -> np.ndarray:
    """Per-UE core-clock seconds excluding memory stalls (the A_c terms).

    ``timing`` is any object with the
    :class:`repro.scc.params.P54CTimingParams` cycle fields (duck-typed
    to keep this module free of upward imports).
    """
    it = summaries.iterations
    cycles = (
        timing.base_cycles_per_nnz * summaries.nnz * it
        + timing.row_overhead_cycles * summaries.rows * it
        + timing.call_overhead_cycles * it
        + timing.l2_hit_cycles * summaries.l2_hits
    )
    return cycles / (core_mhz * 1e6)


def memory_latencies(
    hops: np.ndarray,
    core_mhz: np.ndarray,
    mesh_mhz: float,
    mem_mhz: float,
    lat_core_cycles: float,
    lat_mesh_cycles_per_hop: float,
    lat_mem_cycles: float,
) -> np.ndarray:
    """Vectorized Eq. 1 round-trip latency (seconds) per UE."""
    t_core = lat_core_cycles / (core_mhz * 1e6)
    t_mesh = lat_mesh_cycles_per_hop * hops / (mesh_mhz * 1e6)
    t_mem = lat_mem_cycles / (mem_mhz * 1e6)
    return t_core + t_mesh + t_mem


def _equilibrium_t_star(
    members: Sequence[tuple],
    capacity: float,
    tol: float,
    max_iter: int,
) -> float:
    """One controller's equilibrium service time (bracket + bisection).

    ``members`` holds ``(base_time, mem_lines, latency)`` per core of the
    group.  Same scheme as
    :func:`repro.core.timing._controller_line_time`; the demand sum
    deliberately runs as a sequential interpreter loop — controller
    groups hold at most a dozen cores, where ufunc dispatch costs more
    than the arithmetic, and left-to-right summation keeps every
    bisection iterate bitwise-identical to the scalar solver's.
    """
    triples = [(a, m, la) for a, m, la in members if m > 0]

    def demand(t: float) -> float:
        total = 0.0
        for a, m, la in triples:
            total += m / (a + m * (t if t > la else la))
        return total

    lo = min(la for _a, _m, la in members)
    if demand(lo) <= capacity:
        return lo
    hi = max(lo, 1e-9)
    while demand(hi) > capacity:
        hi *= 2.0
        if hi > 1.0:  # 1 s/line would be ~10^9x the real latency
            return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if demand(mid) > capacity:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * hi:
            break
    return hi


def equilibrium_line_times(
    base_times: np.ndarray,
    mem_lines: np.ndarray,
    latencies: np.ndarray,
    mc_index: np.ndarray,
    capacities: Sequence[float],
    tol: float = 1e-4,
    max_iter: int = 100,
    groups: Optional[Sequence[tuple]] = None,
) -> np.ndarray:
    """Effective seconds-per-line for every UE under MC bandwidth sharing.

    ``mc_index`` assigns each UE to a memory controller; ``capacities``
    gives each controller's line rate (lines/sec).  Controllers are
    solved independently; each member core floors at its own Eq. 1
    latency, exactly as in the scalar solver.

    ``groups`` — precomputed ``(member_indices, capacity)`` pairs, one
    per occupied controller — skips the per-call grouping; sweeps derive
    it once per mapping/config from ``mc_index`` and pass it in.
    """
    base_l = base_times.tolist()
    lines_l = mem_lines.tolist()
    lat_l = latencies.tolist()
    if groups is None:
        by_mc: dict = {}
        for i, mc in enumerate(mc_index.tolist()):
            by_mc.setdefault(mc, []).append(i)
        groups = [(idx, float(capacities[mc])) for mc, idx in by_mc.items()]
    out = [0.0] * len(base_l)
    for idx, capacity in groups:
        t_star = _equilibrium_t_star(
            [(base_l[i], lines_l[i], lat_l[i]) for i in idx],
            capacity,
            tol,
            max_iter,
        )
        for i in idx:
            la = lat_l[i]
            out[i] = t_star if t_star > la else la
    return np.asarray(out, dtype=np.float64)
