"""Compressed-Sparse-Row matrix, the paper's storage format (Fig. 2).

Storage matches the paper's accounting exactly: ``ptr`` (n+1 entries)
and ``index`` (nnz entries) are 32-bit integers, ``da`` (nnz entries)
is double precision — that is what the Table I working-set formula
``ws = 4*((n+1) + nnz) + 8*(nnz + 2n)`` assumes.  ``ptr`` is kept as
int64 internally for safe arithmetic but counted as 4 bytes in the
working-set metric (see :mod:`repro.sparse.stats`).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Immutable CSR matrix ``A`` with double-precision values.

    Attribute names follow the paper's Fig. 2: ``ptr`` row pointers,
    ``index`` column indices, ``da`` nonzero values.
    """

    __slots__ = ("ptr", "index", "da", "n_rows", "n_cols")

    def __init__(
        self,
        ptr: np.ndarray,
        index: np.ndarray,
        da: np.ndarray,
        n_cols: int,
    ) -> None:
        ptr = np.asarray(ptr, dtype=np.int64)
        index = np.asarray(index, dtype=np.int32)
        da = np.asarray(da, dtype=np.float64)
        if ptr.ndim != 1 or index.ndim != 1 or da.ndim != 1:
            raise ValueError("ptr, index, da must be 1-D")
        if ptr.size == 0:
            raise ValueError("ptr must have at least one entry")
        if index.size != da.size:
            raise ValueError(f"index ({index.size}) and da ({da.size}) length mismatch")
        if ptr[0] != 0 or ptr[-1] != index.size:
            raise ValueError("ptr must start at 0 and end at nnz")
        if np.any(np.diff(ptr) < 0):
            raise ValueError("ptr must be non-decreasing")
        if n_cols < 0:
            raise ValueError("n_cols must be non-negative")
        if index.size and (index.min() < 0 or index.max() >= n_cols):
            raise ValueError("column index out of range")
        self.ptr = ptr
        self.index = index
        self.da = da
        self.n_rows = ptr.size - 1
        self.n_cols = n_cols

    # -- basic properties --------------------------------------------------

    @property
    def nnz(self) -> int:
        """Stored nonzeros."""
        return self.da.size

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols)."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz_per_row(self) -> float:
        """Average nonzeros per row (Table I column ``nnz/n``)."""
        return self.nnz / self.n_rows if self.n_rows else 0.0

    def row_lengths(self) -> np.ndarray:
        """Nonzeros per row (length-n array)."""
        return np.diff(self.ptr)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        lo, hi = self.ptr[i], self.ptr[i + 1]
        return self.index[lo:hi], self.da[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield (row index, column ids, values) per row."""
        for i in range(self.n_rows):
            cols, vals = self.row(i)
            yield i, cols, vals

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Encode the nonzeros of a dense 2-D array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense must be 2-D")
        rows, cols = np.nonzero(dense)
        counts = np.bincount(rows, minlength=dense.shape[0])
        ptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return cls(ptr, cols.astype(np.int32), dense[rows, cols], n_cols=dense.shape[1])

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Adopt a ``scipy.sparse`` matrix (converted to CSR, zeros kept out)."""
        m = mat.tocsr()
        m.sum_duplicates()
        return cls(
            m.indptr.astype(np.int64),
            m.indices.astype(np.int32),
            m.data.astype(np.float64),
            n_cols=m.shape[1],
        )

    def to_scipy(self):
        """The same matrix as a scipy.sparse.csr_matrix."""
        import scipy.sparse as sp

        return sp.csr_matrix((self.da, self.index, self.ptr), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Dense ndarray equivalent (small matrices only)."""
        dense = np.zeros(self.shape)
        for i in range(self.n_rows):
            lo, hi = self.ptr[i], self.ptr[i + 1]
            np.add.at(dense[i], self.index[lo:hi], self.da[lo:hi])
        return dense

    # -- slicing (row-block views for partitioning) ---------------------------

    def row_block(self, start: int, stop: int) -> "CSRMatrix":
        """CSR submatrix of rows ``[start, stop)`` (copies are views where possible)."""
        if not (0 <= start <= stop <= self.n_rows):
            raise ValueError(f"bad row block [{start}, {stop}) for {self.n_rows} rows")
        lo, hi = self.ptr[start], self.ptr[stop]
        return CSRMatrix(
            self.ptr[start : stop + 1] - lo,
            self.index[lo:hi],
            self.da[lo:hi],
            n_cols=self.n_cols,
        )

    # -- content addressing ---------------------------------------------------

    def pattern_digest(self) -> str:
        """SHA-256 over the sparsity pattern (``ptr``, ``index``, shape).

        The SpMV address trace — and therefore every exact-replay
        result — depends only on the pattern, never on ``da`` values,
        so this is the matrix component of replay cache keys (see
        :mod:`repro.store`).
        """
        from ..store import digest_arrays

        return digest_arrays(self.ptr, self.index, extra=f"{self.n_rows}x{self.n_cols}")

    # -- equality (for tests) -------------------------------------------------

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-12) -> bool:
        """Structural equality plus value closeness (for tests)."""
        return (
            self.shape == other.shape
            and np.array_equal(self.ptr, other.ptr)
            and np.array_equal(self.index, other.index)
            and np.allclose(self.da, other.da, rtol=rtol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CSRMatrix {self.n_rows}x{self.n_cols} nnz={self.nnz}>"
