"""The Table I matrix testbed, reconstructed.

The paper evaluates 32 square UFL matrices; the OCR capture of Table I
preserved the names but dropped every numeric column.  Each entry below
records the matrix name, its (n, nnz) as published in the University of
Florida collection (values are reconstructions from public UFL
metadata; a few OCR-truncated names are best-effort identifications and
are flagged ``uncertain``), and the synthetic pattern family that
stands in for the real sparsity structure (see
:mod:`repro.sparse.generators` for the family semantics).

Matrices are numbered 1..32 in the paper's order.  The two entries the
paper singles out for very short rows — #24 (rajat) and #25
(ncvxbqp1) — have nnz/n of ~4 and ~7 here, reproducing the small
trip-count behaviour of Sec. IV-B/IV-C.

A global ``scale`` parameter shrinks every matrix proportionally
(n and nnz together, preserving nnz/n) for fast test/CI runs; the
benchmarks record the scale they ran at.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..store import ContentStore, digest_parts
from .csr import CSRMatrix
from .generators import (
    GENERATOR_VERSION,
    banded,
    fem_blocks,
    power_law,
    random_uniform,
    with_dense_rows,
)
from .stats import working_set_mbytes

__all__ = ["SuiteEntry", "SUITE", "build_matrix", "iter_suite", "suite_table", "entry_by_id"]


@dataclass(frozen=True)
class SuiteEntry:
    """One Table I row: identity, target size, and pattern family."""

    mid: int              #: 1-based matrix id as in Table I
    name: str             #: UFL matrix name (possibly OCR-reconstructed)
    n: int                #: rows/columns at scale 1.0
    nnz: int              #: target nonzeros at scale 1.0
    family: str           #: generator family key
    uncertain: bool = False  #: True if the OCR name identification is a guess

    @property
    def nnz_per_row(self) -> float:
        """Target density (Table I's nnz/n column)."""
        return self.nnz / self.n

    @property
    def ws_mbytes(self) -> float:
        """Working set (MiB) at scale 1.0."""
        return working_set_mbytes(self.n, self.nnz)

    def scaled(self, scale: float) -> Tuple[int, float]:
        """(n, nnz_per_row) at the given scale; nnz/n is preserved."""
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        n = max(int(round(self.n * scale)), 64)
        return n, self.nnz_per_row


# (mid, name, n, nnz, family, uncertain)
_RAW: List[Tuple[int, str, int, int, str, bool]] = [
    (1, "TSOPF_FS_b300_c2", 56_814, 8_767_466, "block", False),
    (2, "F1", 343_791, 26_837_113, "banded", False),
    (3, "ship_003", 121_728, 8_086_034, "block", False),
    (4, "thread", 29_736, 4_470_048, "block", False),
    (5, "gupta3", 16_783, 9_323_427, "dense_rows", False),
    (6, "nd3k", 9_000, 3_279_690, "block", False),
    (7, "sme3Dc", 42_930, 3_148_656, "banded", False),
    (8, "pct20stif", 52_329, 2_698_463, "banded", False),
    (9, "tsyl201", 20_685, 2_454_957, "block", False),
    (10, "exdata_1", 6_001, 2_269_501, "block", False),
    (11, "mixtank_new", 29_957, 1_995_041, "banded", False),
    (12, "crystk03", 24_696, 1_751_178, "block", False),
    (13, "av41092", 41_092, 1_683_902, "powerlaw", False),
    (14, "sparsine", 50_000, 1_548_988, "random", False),
    (15, "nc5", 60_000, 1_200_000, "random", True),
    (16, "syn12000a", 12_000, 1_100_000, "random", True),
    (17, "li", 22_695, 1_350_309, "banded", False),
    (18, "msc10848", 10_848, 1_229_778, "block", False),
    (19, "gyro_k", 17_361, 1_021_159, "block", False),
    (20, "sme3Da", 12_504, 874_887, "banded", False),
    (21, "fp", 7_548, 848_553, "dense_rows", False),
    (22, "e40r0100", 17_281, 553_562, "banded", False),
    (23, "psmigr_1", 3_140, 543_162, "random", False),
    (24, "rajat09", 24_482, 105_573, "powerlaw_short", True),
    (25, "ncvxbqp1", 50_000, 349_968, "random_short", False),
    (26, "nmos3", 18_588, 386_594, "powerlaw", False),
    (27, "net25", 9_520, 401_200, "powerlaw", True),
    (28, "garon2", 13_535, 373_235, "banded", False),
    (29, "bcsstm36", 23_052, 320_606, "banded", False),
    (30, "Na5", 5_832, 305_630, "block", False),
    (31, "tandem_vtx", 18_454, 253_350, "banded", False),
    (32, "lhr10", 10_672, 232_633, "powerlaw", False),
]

SUITE: Tuple[SuiteEntry, ...] = tuple(
    SuiteEntry(mid=m, name=nm, n=n, nnz=z, family=f, uncertain=u)
    for (m, nm, n, z, f, u) in _RAW
)

_BY_ID: Dict[int, SuiteEntry] = {e.mid: e for e in SUITE}


def entry_by_id(mid: int) -> SuiteEntry:
    """Suite entry by its 1-based Table I id."""
    try:
        return _BY_ID[mid]
    except KeyError:
        raise KeyError(f"no suite entry with id {mid}; valid ids are 1..32") from None


@lru_cache(maxsize=64)
def build_matrix(mid: int, scale: float = 1.0, seed: int = 20120101) -> CSRMatrix:
    """Generate the synthetic stand-in for suite matrix ``mid``.

    Deterministic in (mid, scale, seed).  Results are memoized in
    process (benchmarks revisit the same matrices across experiments)
    and content-addressed on disk (:mod:`repro.store`), so parallel
    campaign workers — which fork fresh processes with empty in-memory
    caches — stop regenerating identical matrices.  The disk key
    includes :data:`~repro.sparse.generators.GENERATOR_VERSION`; bump
    it when generator output changes.
    """
    e = entry_by_id(mid)  # validate the id before touching the store
    store = ContentStore(namespace="matrix")
    key = digest_parts("matrix", GENERATOR_VERSION, mid, scale, seed)
    bundle = store.get_arrays(key)
    if bundle is not None:
        try:
            return CSRMatrix(
                bundle["ptr"],
                bundle["index"],
                bundle["da"],
                n_cols=int(bundle["n_cols"][0]),
            )
        except (KeyError, IndexError, ValueError):
            pass  # malformed entry: fall through and regenerate
    a = _generate_matrix(e, scale, seed)
    store.put_arrays(
        key,
        ptr=a.ptr,
        index=a.index,
        da=a.da,
        n_cols=np.array([a.n_cols], dtype=np.int64),
    )
    return a


def _generate_matrix(e: SuiteEntry, scale: float, seed: int) -> CSRMatrix:
    """The actual per-family generation behind :func:`build_matrix`."""
    mid = e.mid
    n, npr = e.scaled(scale)
    s = seed + mid  # distinct but reproducible stream per matrix
    if e.family == "banded":
        # Band width chosen so the stand-in's x-gather footprint scales
        # with the matrix like a FEM discretization: ~sqrt of the rows.
        bandwidth = max(int(n**0.5), 2)
        return banded(n, npr, bandwidth, seed=s)
    if e.family == "block":
        # Structural matrices: dense register blocks on a banded
        # block-level pattern (multiple DoF per mesh node).  Block edge
        # grows with density so very dense matrices (nd3k) keep a
        # realistic block count per row.
        block = 6 if npr >= 150 else 4
        return fem_blocks(n, block, npr, seed=s)
    if e.family == "random":
        return random_uniform(n, npr, seed=s)
    if e.family == "random_short":
        return random_uniform(n, max(npr, 2.0), seed=s)
    if e.family == "powerlaw":
        return power_law(n, npr, alpha=1.1, seed=s)
    if e.family == "powerlaw_short":
        return power_law(n, max(npr, 2.0), alpha=0.7, seed=s)
    if e.family == "dense_rows":
        base = random_uniform(n, max(npr * 0.3, 1.0), seed=s)
        # Put the remaining ~70% of nnz into rows filled to ~30%: the
        # dense-row count follows from the nnz budget.
        row_fill = 0.3
        n_dense = max(int(round(0.7 * npr / row_fill)), 1)
        n_dense = min(n_dense, n)
        return with_dense_rows(base, n_dense, row_fill, seed=s + 1_000_000)
    raise ValueError(f"unknown family {e.family!r} for matrix {e.name}")


def iter_suite(
    scale: float = 1.0,
    ids: Optional[List[int]] = None,
    seed: int = 20120101,
) -> Iterator[Tuple[SuiteEntry, CSRMatrix]]:
    """Yield (entry, matrix) pairs, building lazily."""
    for e in SUITE:
        if ids is not None and e.mid not in ids:
            continue
        yield e, build_matrix(e.mid, scale, seed)


def suite_table(scale: float = 1.0, ids: Optional[List[int]] = None) -> List[dict]:
    """Table I as data: one dict per matrix with achieved statistics."""
    rows = []
    for e, a in iter_suite(scale=scale, ids=ids):
        rows.append(
            {
                "id": e.mid,
                "name": e.name,
                "n": a.n_rows,
                "nnz": a.nnz,
                "nnz_per_row": a.nnz_per_row,
                "ws_mbytes": working_set_mbytes(a.n_rows, a.nnz),
                "family": e.family,
                "target_n": e.n,
                "target_nnz": e.nnz,
            }
        )
    return rows
