"""Sparse-matrix substrate: formats, kernels, partitioning, testbed.

- :mod:`~repro.sparse.csr` / :mod:`~repro.sparse.coo` — storage formats.
- :mod:`~repro.sparse.spmv` — the CSR kernels (reference, vectorized,
  and the paper's 'no x misses' diagnostic variant).
- :mod:`~repro.sparse.partition` — balanced-nnz row partitioning.
- :mod:`~repro.sparse.generators` — synthetic sparsity-pattern families.
- :mod:`~repro.sparse.suite` — the reconstructed Table I testbed.
- :mod:`~repro.sparse.stats` — working-set and profile statistics.
- :mod:`~repro.sparse.io` — MatrixMarket reader/writer.
- :mod:`~repro.sparse.bcsr` — register-blocked BCSR format.
- :mod:`~repro.sparse.reorder` — Cuthill-McKee locality reordering.
- :mod:`~repro.sparse.ell` — ELL/HYB (the Fig. 10 GPUs' format).
- :mod:`~repro.sparse.fastpath` — vectorized analytic timing batch ops.
"""

from .bcsr import BCSRMatrix, bcsr_traffic_bytes, csr_traffic_bytes
from .fastpath import (
    BatchedSummaries,
    BatchedTraces,
    batch_access_summaries,
    batch_traces,
)
from .coo import COOMatrix
from .csr import CSRMatrix
from .ell import ELLMatrix, ell_efficiency
from .generators import (
    banded,
    block_diagonal,
    fem_blocks,
    power_law,
    random_uniform,
    stencil_2d,
    with_dense_rows,
)
from .io import read_matrix_market, write_matrix_market
from .partition import RowPartition, partition_rows_balanced, partition_rows_uniform
from .reorder import (
    bandwidth,
    cuthill_mckee,
    gather_locality_gain,
    mean_column_distance,
    permute_symmetric,
    reverse_cuthill_mckee,
)
from .spmv import spmv, spmv_no_x_miss, spmv_reference, spmv_row_range
from .stats import (
    MatrixProfile,
    profile_matrix,
    working_set_bytes,
    working_set_mbytes,
    working_set_per_core,
)
from .suite import SUITE, SuiteEntry, build_matrix, entry_by_id, iter_suite, suite_table

__all__ = [
    "BatchedSummaries",
    "BatchedTraces",
    "batch_access_summaries",
    "batch_traces",
    "BCSRMatrix",
    "bcsr_traffic_bytes",
    "csr_traffic_bytes",
    "bandwidth",
    "cuthill_mckee",
    "gather_locality_gain",
    "mean_column_distance",
    "permute_symmetric",
    "reverse_cuthill_mckee",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "ell_efficiency",
    "banded",
    "block_diagonal",
    "fem_blocks",
    "power_law",
    "random_uniform",
    "stencil_2d",
    "with_dense_rows",
    "read_matrix_market",
    "write_matrix_market",
    "RowPartition",
    "partition_rows_balanced",
    "partition_rows_uniform",
    "spmv",
    "spmv_no_x_miss",
    "spmv_reference",
    "spmv_row_range",
    "MatrixProfile",
    "profile_matrix",
    "working_set_bytes",
    "working_set_mbytes",
    "working_set_per_core",
    "SUITE",
    "SuiteEntry",
    "build_matrix",
    "entry_by_id",
    "iter_suite",
    "suite_table",
]
