"""Matrix reordering for gather locality.

Sec. IV-C of the paper shows the irregular ``x`` gather dominating SpMV
cost on the SCC; the authors' companion work (refs. [7][12]) attacks it
by *reordering* rows/columns so nearby rows touch nearby columns.  This
module implements the classic structural reordering pipeline from
scratch:

- :func:`cuthill_mckee` / :func:`reverse_cuthill_mckee` — breadth-first
  bandwidth-reducing orderings over the symmetrized pattern;
- :func:`permute_symmetric` — apply ``P A P^T`` to a CSR matrix;
- :func:`bandwidth` and :func:`mean_column_distance` — the structural
  metrics the orderings optimize;
- :func:`gather_locality_gain` — the model-level payoff: predicted
  x-gather misses before vs after reordering at a given cache size,
  via the footprint locality model.

``examples/reordering_study.py`` and the extension benchmark
``benchmarks/test_ext_reordering.py`` run the pipeline on the testbed's
scattered matrices and measure the SpMV improvement on the SCC model.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

from ..scc.locality import miss_ratio_curve
from .csr import CSRMatrix

__all__ = [
    "bandwidth",
    "mean_column_distance",
    "cuthill_mckee",
    "reverse_cuthill_mckee",
    "permute_symmetric",
    "gather_locality_gain",
]


def bandwidth(a: CSRMatrix) -> int:
    """max |i - j| over stored entries (0 for empty/diagonal matrices)."""
    if a.nnz == 0:
        return 0
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
    return int(np.abs(rows - a.index.astype(np.int64)).max())


def mean_column_distance(a: CSRMatrix) -> float:
    """mean |i - j| over stored entries: dispersion from the diagonal."""
    if a.nnz == 0:
        return 0.0
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
    return float(np.abs(rows - a.index.astype(np.int64)).mean())


def _symmetrized_adjacency(a: CSRMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """CSR (ptr, index) of the pattern of A + A^T without self loops."""
    if a.n_rows != a.n_cols:
        raise ValueError("reordering requires a square matrix")
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
    cols = a.index.astype(np.int64)
    src = np.concatenate([rows, cols])
    dst = np.concatenate([cols, rows])
    off = src != dst
    src, dst = src[off], dst[off]
    # Dedupe (src, dst) pairs.
    key = src * a.n_cols + dst
    key = np.unique(key)
    src = key // a.n_cols
    dst = key % a.n_cols
    ptr = np.zeros(a.n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=a.n_rows), out=ptr[1:])
    return ptr, dst


def cuthill_mckee(a: CSRMatrix, start: Optional[int] = None) -> np.ndarray:
    """Cuthill-McKee ordering of the symmetrized pattern.

    Returns a permutation ``perm`` with ``perm[k]`` = the original index
    of the vertex placed at position ``k``.  Components are traversed
    from lowest-degree unvisited vertices; within the BFS, neighbours
    enqueue in increasing-degree order (the CM rule).
    """
    n = a.n_rows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ptr, adj = _symmetrized_adjacency(a)
    degree = np.diff(ptr)
    if start is not None and not 0 <= start < n:
        raise ValueError(f"start vertex {start} out of range [0, {n})")

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Deterministic component seeds: lowest degree, then lowest id.
    seeds = np.lexsort((np.arange(n), degree)).tolist()
    queue: deque = deque()
    if start is not None:
        queue.append(start)
        visited[start] = True
    while pos < n:
        if not queue:
            nxt = next(s for s in seeds if not visited[s])
            queue.append(nxt)
            visited[nxt] = True
        v = queue.popleft()
        order[pos] = v
        pos += 1
        nbrs = adj[ptr[v] : ptr[v + 1]]
        fresh = nbrs[~visited[nbrs]]
        if fresh.size:
            fresh = fresh[np.lexsort((fresh, degree[fresh]))]
            visited[fresh] = True
            queue.extend(fresh.tolist())
    return order


def reverse_cuthill_mckee(a: CSRMatrix, start: Optional[int] = None) -> np.ndarray:
    """RCM: the CM order reversed (usually a tighter profile)."""
    return cuthill_mckee(a, start)[::-1].copy()


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply ``P A P^T``: row and column ``perm[k]`` become row/col ``k``."""
    perm = np.asarray(perm, dtype=np.int64)
    if a.n_rows != a.n_cols:
        raise ValueError("symmetric permutation requires a square matrix")
    if sorted(perm.tolist()) != list(range(a.n_rows)):
        raise ValueError("perm must be a permutation of 0..n-1")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
    new_rows = inv[rows]
    new_cols = inv[a.index.astype(np.int64)]
    from .coo import COOMatrix

    return COOMatrix(a.n_rows, a.n_cols, new_rows, new_cols, a.da).to_csr()


def gather_locality_gain(
    before: CSRMatrix,
    after: CSRMatrix,
    cache_lines: float = 4096.0,
    line_doubles: int = 4,
) -> Tuple[int, int]:
    """(misses before, misses after) of the x-gather line stream.

    Evaluated with the footprint locality model at ``cache_lines``
    capacity (default: half of the SCC L2 at 32-byte lines).
    """
    if before.nnz != after.nnz:
        raise ValueError(
            f"matrices must hold the same entries ({before.nnz} vs {after.nnz})"
        )
    b = miss_ratio_curve(before.index // line_doubles).misses(cache_lines)
    f = miss_ratio_curve(after.index // line_doubles).misses(cache_lines)
    return int(b), int(f)
