"""Matrix statistics used throughout the evaluation.

The central quantity is the paper's working-set formula (Sec. III)::

    ws = 4 * ((n + 1) + nnz) + 8 * (nnz + 2 * n)   [bytes]

i.e. 32-bit ``ptr`` and ``index``, double-precision ``da``, ``x`` and
``y``.  The per-core working set of a row partition splits the ptr/
index/da/y terms by part and charges each part only the slice of ``x``
its column range can touch is *not* done — the paper divides the whole
working set by the core count, and we follow it exactly
(:func:`working_set_per_core`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .csr import CSRMatrix
from .partition import RowPartition

__all__ = [
    "working_set_bytes",
    "working_set_mbytes",
    "working_set_per_core",
    "MatrixProfile",
    "profile_matrix",
    "ROW_LENGTH_EDGES",
    "row_extents",
    "row_length_histogram",
    "bandwidth_stats",
    "block_density",
    "reuse_proxies",
    "partition_imbalance",
    "partition_spans",
]


def working_set_bytes(n: int, nnz: int) -> int:
    """Paper Sec. III: bytes touched by one SpMV on an n-row matrix."""
    if n < 0 or nnz < 0:
        raise ValueError("n and nnz must be non-negative")
    return 4 * ((n + 1) + nnz) + 8 * (nnz + 2 * n)


def working_set_mbytes(n: int, nnz: int) -> float:
    """The working-set formula in MiB."""
    return working_set_bytes(n, nnz) / 2**20


def working_set_per_core(a: CSRMatrix, n_cores: int) -> float:
    """Working set divided evenly by core count (bytes), as in Fig. 6."""
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    return working_set_bytes(a.n_rows, a.nnz) / n_cores


@dataclass(frozen=True)
class MatrixProfile:
    """Summary statistics of one matrix (Table I row + locality extras)."""

    n: int
    nnz: int
    nnz_per_row: float
    ws_mbytes: float
    row_len_min: int
    row_len_max: int
    row_len_std: float
    mean_col_distance: float  # mean |col - row|: dispersion from diagonal

    def row(self) -> tuple:
        """(n, nnz, nnz/n, ws MB) — the four Table I columns."""
        return (self.n, self.nnz, self.nnz_per_row, self.ws_mbytes)


def profile_matrix(a: CSRMatrix) -> MatrixProfile:
    """Compute the full MatrixProfile of a matrix."""
    lengths = a.row_lengths()
    rows_of_nnz = np.repeat(np.arange(a.n_rows, dtype=np.int64), lengths)
    col_dist = float(np.abs(a.index.astype(np.int64) - rows_of_nnz).mean()) if a.nnz else 0.0
    return MatrixProfile(
        n=a.n_rows,
        nnz=a.nnz,
        nnz_per_row=a.nnz_per_row,
        ws_mbytes=working_set_mbytes(a.n_rows, a.nnz),
        row_len_min=int(lengths.min()) if a.n_rows else 0,
        row_len_max=int(lengths.max()) if a.n_rows else 0,
        row_len_std=float(lengths.std()) if a.n_rows else 0.0,
        mean_col_distance=col_dist,
    )


# -- vectorized feature kernels (the mode="predict" extractor) ------------
#
# Everything below is a pure-NumPy single pass over ``ptr``/``index`` —
# no Python per-row loops — so the whole matrix-level feature extraction
# costs a small multiple of one ``np.diff`` even at full Table-I scale.
# The kernels are deliberately *structural*: they see only the sparsity
# pattern, never ``da``, because the performance model itself is
# value-blind.

#: row-length histogram bucket upper bounds (inclusive); the last
#: bucket is open-ended.  Chosen to resolve the suite's spread: empty
#: rows, near-diagonal rows, and the power-law heavy tail.
ROW_LENGTH_EDGES: Tuple[int, ...] = (0, 2, 8, 32, 128)


def _segment_reduce(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray, op, fill: float
) -> np.ndarray:
    """Per-segment ``op.reduceat`` that tolerates empty segments.

    ``np.ufunc.reduceat`` mishandles zero-length segments (it returns
    the element *at* the index, and an index equal to ``values.size``
    is outright invalid), so the reduction runs over the *nonempty*
    segments only — the segments are contiguous (``ends[k] ==
    starts[k+1]``), so the next nonempty start is exactly this
    segment's end — and empty segments get ``fill``.
    """
    out = np.full(starts.size, fill, dtype=float)
    nonempty = starts < ends
    if values.size and nonempty.any():
        out[nonempty] = op.reduceat(values, starts[nonempty])
    return out


def row_extents(a: CSRMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row ``(min_col, max_col, length)`` in one vectorized pass.

    Empty rows get ``min_col = +inf`` and ``max_col = -inf`` so that
    downstream segment minima/maxima ignore them naturally.
    """
    lengths = a.row_lengths().astype(np.int64)
    starts = a.ptr[:-1].astype(np.int64)
    ends = a.ptr[1:].astype(np.int64)
    cols = a.index.astype(np.int64)
    row_min = _segment_reduce(cols, starts, ends, np.minimum, np.inf)
    row_max = _segment_reduce(cols, starts, ends, np.maximum, -np.inf)
    return row_min, row_max, lengths


def row_length_histogram(a: CSRMatrix, edges: Tuple[int, ...] = ROW_LENGTH_EDGES) -> np.ndarray:
    """Fractions of rows whose nnz falls in each bucket (one extra
    open-ended bucket at the end).  Invariant under any row or column
    permutation — it sees only the multiset of row lengths."""
    lengths = a.row_lengths()
    if a.n_rows == 0:
        return np.zeros(len(edges) + 1)
    idx = np.searchsorted(np.asarray(edges, dtype=np.int64), lengths, side="left")
    counts = np.bincount(idx, minlength=len(edges) + 1)
    return counts / a.n_rows


def bandwidth_stats(
    a: CSRMatrix,
    extents: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
) -> Dict[str, float]:
    """Diagonal-dispersion features (all normalized by ``n_cols``).

    ``mean_dist``/``max_dist`` are over per-nonzero ``|col - row|``;
    ``band_mean`` is the mean per-row column span ``(max - min + 1)``
    over nonempty rows and ``profile_frac`` the summed spans over
    ``n * n`` (the classic matrix profile).  These *do* change under
    row/column reorderings — that is their job.  Pass precomputed
    ``extents`` (from :func:`row_extents`) to skip recomputing them.
    """
    n = max(a.n_cols, 1)
    if a.nnz == 0:
        return {"mean_dist": 0.0, "max_dist": 0.0, "band_mean": 0.0, "profile_frac": 0.0}
    rows_of_nnz = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())
    dist = np.abs(a.index - rows_of_nnz)
    row_min, row_max, lengths = extents if extents is not None else row_extents(a)
    nonempty = lengths > 0
    spans = (row_max[nonempty] - row_min[nonempty] + 1.0) if nonempty.any() else np.zeros(1)
    return {
        "mean_dist": float(dist.mean()) / n,
        "max_dist": float(dist.max()) / n,
        "band_mean": float(spans.mean()) / n,
        "profile_frac": float(spans.sum()) / (n * max(a.n_rows, 1)),
    }


def block_density(a: CSRMatrix, blocks: int = 16) -> Dict[str, float]:
    """Coarse ``blocks x blocks`` occupancy of the sparsity pattern.

    ``fill`` is the fraction of nonempty blocks; ``cv`` the coefficient
    of variation of nonzeros over the *row* block stripes (a row-block
    density/imbalance proxy that survives any column reordering).

    Works stripe-by-stripe over the CSR layout: rows are sorted, so one
    row block is one contiguous ``index`` slice — no per-nonzero row-id
    expansion needed on the feature extraction hot path.
    """
    if a.nnz == 0 or a.n_rows == 0 or a.n_cols == 0:
        return {"fill": 0.0, "cv": 0.0}
    b = max(1, blocks)
    # stripe r covers rows [edges[r], edges[r+1]) with edges[r] =
    # ceil(r * n_rows / b), i.e. exactly the rows whose block index
    # ``row * b // n_rows`` equals r; stripe nnz is a ptr diff.
    edges = -((np.arange(b + 1, dtype=np.int64) * a.n_rows) // -b)
    stripe_ptr = a.ptr[edges].astype(np.int64)
    stripe = np.diff(stripe_ptr).astype(float)
    filled = 0
    for r in range(b):
        sl = a.index[stripe_ptr[r]:stripe_ptr[r + 1]]
        if sl.size:
            cb = np.minimum(sl * b // a.n_cols, b - 1)
            filled += int(np.count_nonzero(np.bincount(cb, minlength=b)))
    mean = stripe.mean()
    return {
        "fill": filled / (b * b),
        "cv": float(stripe.std() / mean) if mean > 0 else 0.0,
    }


def reuse_proxies(a: CSRMatrix, line_elems: int = 8) -> Dict[str, float]:
    """Reuse-distance proxies of the ``x``-gather stream.

    ``col_reuse`` is nnz over distinct columns touched (temporal reuse
    of ``x`` entries); ``line_reuse`` nnz over distinct ``x`` cache
    lines (``line_elems`` doubles per line — spatial reuse); and
    ``adj_gap`` the mean within-row gap between consecutive column
    indices, normalized by ``line_elems`` (stride-irregularity of the
    gather: ~1/8 for a dense band, large for scattered rows).
    """
    if a.nnz == 0:
        return {"col_reuse": 1.0, "line_reuse": 1.0, "adj_gap": 0.0}
    cols = a.index.astype(np.int64)
    # bincount-based distinct counts: O(nnz + n_cols), an order of
    # magnitude cheaper than sort-based ``np.unique`` on the feature
    # extraction hot path (column ids are bounded by n_cols).
    touched = np.bincount(cols, minlength=a.n_cols) > 0
    uniq_cols = int(np.count_nonzero(touched))
    le = max(line_elems, 1)
    uniq_lines = int(
        np.count_nonzero(np.bitwise_or.reduceat(touched, np.arange(0, touched.size, le)))
    ) if touched.size else 0
    # within-row gap mean without materializing a masked copy: total
    # |gap| minus the (few, one per row boundary) cross-row gaps.
    if a.nnz > 1:
        gaps = np.abs(np.diff(cols))
        bidx = a.ptr[1:-1].astype(np.int64) - 1
        bidx = bidx[(bidx >= 0) & (bidx < gaps.size)]
        if bidx.size > 1:
            # empty rows repeat a boundary index (ptr is sorted, so
            # dedup is a neighbour test); each gap crosses once.
            keep = np.empty(bidx.size, dtype=bool)
            keep[0] = True
            np.not_equal(bidx[1:], bidx[:-1], out=keep[1:])
            bidx = bidx[keep]
        n_within = gaps.size - bidx.size
        mean_gap = (
            float(gaps.sum() - gaps[bidx].sum()) / n_within if n_within > 0 else 0.0
        )
    else:
        mean_gap = 0.0
    return {
        "col_reuse": a.nnz / max(uniq_cols, 1),
        "line_reuse": a.nnz / max(uniq_lines, 1),
        "adj_gap": mean_gap / max(line_elems, 1),
    }


def partition_imbalance(a: CSRMatrix, partition: RowPartition) -> Dict[str, float]:
    """Per-part nonzero/row imbalance of a row partition.

    ``nnz_cv``/``nnz_max_frac`` quantify how uneven the per-core work
    is (``max_frac`` is max over mean — 1.0 means perfectly balanced);
    the row-count variants capture uneven *row* loads, which drive the
    per-core loop overhead even when nnz balances.
    """
    part_nnz = partition.part_nnz(a).astype(float)
    bounds = np.asarray([r for r, _ in partition.ranges()] + [a.n_rows], dtype=np.int64)
    part_rows = np.diff(bounds).astype(float)

    def _cv_max(v: np.ndarray) -> Tuple[float, float]:
        mean = v.mean() if v.size else 0.0
        if mean <= 0:
            return 0.0, 1.0
        return float(v.std() / mean), float(v.max() / mean)

    nnz_cv, nnz_max = _cv_max(part_nnz)
    rows_cv, rows_max = _cv_max(part_rows)
    return {
        "nnz_cv": nnz_cv,
        "nnz_max_frac": nnz_max,
        "rows_cv": rows_cv,
        "rows_max_frac": rows_max,
    }


def partition_spans(
    a: CSRMatrix,
    partition: RowPartition,
    row_min: np.ndarray = None,
    row_max: np.ndarray = None,
) -> np.ndarray:
    """Per-part ``x`` column span (elements) — the gather footprint.

    ``row_min``/``row_max`` from :func:`row_extents` can be passed in to
    amortize the O(nnz) pass across many partitions of one matrix; the
    per-partition cost is then O(n_parts).
    """
    if row_min is None or row_max is None:
        row_min, row_max, _ = row_extents(a)
    bounds = np.asarray([r for r, _ in partition.ranges()] + [a.n_rows], dtype=np.int64)
    starts, ends = bounds[:-1], bounds[1:]
    pmin = _segment_reduce(row_min, starts, ends, np.minimum, np.inf)
    pmax = _segment_reduce(row_max, starts, ends, np.maximum, -np.inf)
    spans = pmax - pmin + 1.0
    spans[~np.isfinite(spans)] = 0.0
    return np.maximum(spans, 0.0)
