"""Matrix statistics used throughout the evaluation.

The central quantity is the paper's working-set formula (Sec. III)::

    ws = 4 * ((n + 1) + nnz) + 8 * (nnz + 2 * n)   [bytes]

i.e. 32-bit ``ptr`` and ``index``, double-precision ``da``, ``x`` and
``y``.  The per-core working set of a row partition splits the ptr/
index/da/y terms by part and charges each part only the slice of ``x``
its column range can touch is *not* done — the paper divides the whole
working set by the core count, and we follow it exactly
(:func:`working_set_per_core`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = [
    "working_set_bytes",
    "working_set_mbytes",
    "working_set_per_core",
    "MatrixProfile",
    "profile_matrix",
]


def working_set_bytes(n: int, nnz: int) -> int:
    """Paper Sec. III: bytes touched by one SpMV on an n-row matrix."""
    if n < 0 or nnz < 0:
        raise ValueError("n and nnz must be non-negative")
    return 4 * ((n + 1) + nnz) + 8 * (nnz + 2 * n)


def working_set_mbytes(n: int, nnz: int) -> float:
    """The working-set formula in MiB."""
    return working_set_bytes(n, nnz) / 2**20


def working_set_per_core(a: CSRMatrix, n_cores: int) -> float:
    """Working set divided evenly by core count (bytes), as in Fig. 6."""
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    return working_set_bytes(a.n_rows, a.nnz) / n_cores


@dataclass(frozen=True)
class MatrixProfile:
    """Summary statistics of one matrix (Table I row + locality extras)."""

    n: int
    nnz: int
    nnz_per_row: float
    ws_mbytes: float
    row_len_min: int
    row_len_max: int
    row_len_std: float
    mean_col_distance: float  # mean |col - row|: dispersion from diagonal

    def row(self) -> tuple:
        """(n, nnz, nnz/n, ws MB) — the four Table I columns."""
        return (self.n, self.nnz, self.nnz_per_row, self.ws_mbytes)


def profile_matrix(a: CSRMatrix) -> MatrixProfile:
    """Compute the full MatrixProfile of a matrix."""
    lengths = a.row_lengths()
    rows_of_nnz = np.repeat(np.arange(a.n_rows, dtype=np.int64), lengths)
    col_dist = float(np.abs(a.index.astype(np.int64) - rows_of_nnz).mean()) if a.nnz else 0.0
    return MatrixProfile(
        n=a.n_rows,
        nnz=a.nnz,
        nnz_per_row=a.nnz_per_row,
        ws_mbytes=working_set_mbytes(a.n_rows, a.nnz),
        row_len_min=int(lengths.min()) if a.n_rows else 0,
        row_len_max=int(lengths.max()) if a.n_rows else 0,
        row_len_std=float(lengths.std()) if a.n_rows else 0.0,
        mean_col_distance=col_dist,
    )
