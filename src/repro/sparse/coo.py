"""Coordinate-format (COO) sparse matrix builder.

COO is the assembly format: duplicate entries are allowed at build time
and summed on conversion.  All evaluation-path code works on
:class:`~repro.sparse.csr.CSRMatrix`; COO exists so generators and I/O
can emit triplets without worrying about ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .csr import CSRMatrix

__all__ = ["COOMatrix"]


@dataclass(frozen=True)
class COOMatrix:
    """Immutable triplet matrix: ``(row[k], col[k]) -> val[k]``."""

    n_rows: int
    n_cols: int
    row: np.ndarray
    col: np.ndarray
    val: np.ndarray

    def __post_init__(self) -> None:
        row = np.asarray(self.row, dtype=np.int64)
        col = np.asarray(self.col, dtype=np.int64)
        val = np.asarray(self.val, dtype=np.float64)
        if not (row.shape == col.shape == val.shape) or row.ndim != 1:
            raise ValueError("row, col, val must be 1-D arrays of equal length")
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if row.size:
            if row.min() < 0 or row.max() >= self.n_rows:
                raise ValueError("row index out of range")
            if col.min() < 0 or col.max() >= self.n_cols:
                raise ValueError("column index out of range")
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "val", val)

    @property
    def nnz(self) -> int:
        """Stored triplets (duplicates not yet merged)."""
        return self.row.size

    @property
    def shape(self) -> tuple:
        """(rows, cols)."""
        return (self.n_rows, self.n_cols)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR, summing duplicate coordinates."""
        from .csr import CSRMatrix

        if self.nnz == 0:
            return CSRMatrix(
                np.zeros(self.n_rows + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
                n_cols=self.n_cols,
            )
        # Sort by (row, col) then merge runs of equal coordinates.
        key = self.row * self.n_cols + self.col
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        val_s = self.val[order]
        uniq_mask = np.empty(key_s.size, dtype=bool)
        uniq_mask[0] = True
        uniq_mask[1:] = key_s[1:] != key_s[:-1]
        group_ids = np.cumsum(uniq_mask) - 1
        merged_vals = np.bincount(group_ids, weights=val_s)
        uniq_keys = key_s[uniq_mask]
        rows = (uniq_keys // self.n_cols).astype(np.int64)
        cols = (uniq_keys % self.n_cols).astype(np.int32)
        ptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=self.n_rows)
        np.cumsum(counts, out=ptr[1:])
        return CSRMatrix(ptr, cols, merged_vals.astype(np.float64), n_cols=self.n_cols)

    def to_dense(self) -> np.ndarray:
        """Dense ndarray with duplicate triplets summed."""
        dense = np.zeros((self.n_rows, self.n_cols))
        np.add.at(dense, (self.row, self.col), self.val)
        return dense
