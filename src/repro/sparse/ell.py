"""ELLPACK (ELL) format — the GPU-side counterpart in the comparison.

The paper's Fig. 10 GPUs run the Bell & Garland CUDA kernels (paper
ref. [9]), whose workhorse formats are ELL and HYB.  ELL pads every row
to a common length ``k`` so column indices and values become dense
``n x k`` arrays — perfectly coalesced loads on a GPU, pure waste on a
CPU when row lengths vary:

- :meth:`ELLMatrix.from_csr` converts with an optional row-length cap;
  rows longer than ``k`` spill into a COO *tail* (that pairing is the
  HYB format);
- :func:`ell_efficiency` quantifies the padding waste that decides
  ELL vs HYB — the decision rule Bell & Garland describe;
- the SpMV kernel is fully vectorized and validated against CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["ELLMatrix", "ell_efficiency"]

#: column sentinel for padding slots.
PAD = -1


@dataclass(frozen=True)
class ELLMatrix:
    """Padded n x k storage plus an optional COO tail (HYB layout)."""

    n_rows: int
    n_cols: int
    k: int
    indices: np.ndarray          # (n_rows, k) int32, PAD where empty
    data: np.ndarray             # (n_rows, k) float64, 0 where empty
    tail: Optional[COOMatrix]    # spilled entries (None = pure ELL)

    def __post_init__(self) -> None:
        if self.indices.shape != (self.n_rows, self.k) or self.data.shape != (
            self.n_rows,
            self.k,
        ):
            raise ValueError(
                f"indices/data must be ({self.n_rows}, {self.k}), got "
                f"{self.indices.shape} / {self.data.shape}"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_csr(cls, a: CSRMatrix, k: Optional[int] = None) -> "ELLMatrix":
        """Convert; rows longer than ``k`` spill into the COO tail.

        ``k`` defaults to the maximum row length (pure ELL, maximal
        padding).  ``k=0`` is allowed and puts everything in the tail.
        """
        lengths = np.diff(a.ptr)
        max_len = int(lengths.max()) if a.n_rows else 0
        k = max_len if k is None else k
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        indices = np.full((a.n_rows, k), PAD, dtype=np.int32)
        data = np.zeros((a.n_rows, k))
        tail_rows, tail_cols, tail_vals = [], [], []
        for i in range(a.n_rows):
            lo, hi = int(a.ptr[i]), int(a.ptr[i + 1])
            take = min(hi - lo, k)
            indices[i, :take] = a.index[lo : lo + take]
            data[i, :take] = a.da[lo : lo + take]
            if hi - lo > k:
                tail_rows.append(np.full(hi - lo - k, i, dtype=np.int64))
                tail_cols.append(a.index[lo + k : hi].astype(np.int64))
                tail_vals.append(a.da[lo + k : hi])
        tail = None
        if tail_rows:
            tail = COOMatrix(
                a.n_rows,
                a.n_cols,
                np.concatenate(tail_rows),
                np.concatenate(tail_cols),
                np.concatenate(tail_vals),
            )
        return cls(a.n_rows, a.n_cols, k, indices, data, tail)

    # -- properties ----------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Structural nonzeros (ELL slots in use + tail)."""
        stored = int((self.indices != PAD).sum())
        return stored + (self.tail.nnz if self.tail is not None else 0)

    @property
    def padded_slots(self) -> int:
        """Wasted ELL slots (the padding cost)."""
        return int((self.indices == PAD).sum())

    @property
    def is_hybrid(self) -> bool:
        """True when a COO tail exists (HYB layout)."""
        return self.tail is not None

    # -- kernels ----------------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x, vectorized over the padded lattice + COO tail."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        safe = np.where(self.indices == PAD, 0, self.indices)
        gathered = x[safe] * (self.indices != PAD)
        y = (self.data * gathered).sum(axis=1)
        if self.tail is not None:
            np.add.at(y, self.tail.row, self.tail.val * x[self.tail.col])
        return y

    def to_csr(self) -> CSRMatrix:
        """Expand back to CSR (padding dropped)."""
        rows_grid, slots = np.nonzero(self.indices != PAD)
        rows = rows_grid.astype(np.int64)
        cols = self.indices[rows_grid, slots].astype(np.int64)
        vals = self.data[rows_grid, slots]
        if self.tail is not None:
            rows = np.concatenate([rows, self.tail.row])
            cols = np.concatenate([cols, self.tail.col])
            vals = np.concatenate([vals, self.tail.val])
        return COOMatrix(self.n_rows, self.n_cols, rows, cols, vals).to_csr()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "HYB" if self.is_hybrid else "ELL"
        return f"<ELLMatrix[{kind}] {self.n_rows}x{self.n_cols} k={self.k} nnz={self.nnz}>"


def ell_efficiency(a: CSRMatrix, k: Optional[int] = None) -> Tuple[float, int]:
    """(slot utilization, spilled entries) of converting ``a`` at width k.

    Bell & Garland pick HYB's split so utilization stays high; a pure
    ELL of a skewed matrix wastes most of its slots.
    """
    lengths = np.diff(a.ptr)
    max_len = int(lengths.max()) if a.n_rows else 0
    k = max_len if k is None else k
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    stored = int(np.minimum(lengths, k).sum())
    slots = a.n_rows * k
    spilled = int(np.maximum(lengths - k, 0).sum())
    utilization = stored / slots if slots else 1.0
    return utilization, spilled
