"""Block CSR (BCSR) — the register-blocking optimization of the
paper's related work (Williams et al. [11], Sec. V).

BCSR stores the matrix as dense ``r x c`` blocks anchored on a block
grid: one column index per *block* instead of per nonzero, and the
block's values stored densely (explicit zeros where the pattern does
not fill the block).  For matrices with small dense substructure (the
``block`` family of the testbed) this cuts index traffic by ``~1/(r*c)``
and turns the gather into ``c``-element vector loads — exactly the
trade the paper's discussion of optimization techniques describes:

* index bytes per stored value: ``4 / (r*c)`` instead of 4;
* fill-in: stored values grow by the fill ratio ``>= 1``;
* profitable iff the traffic saved on indices exceeds the traffic
  added by fill-in — :func:`bcsr_traffic_bytes` exposes both terms and
  :meth:`BCSRMatrix.fill_ratio` the measured fill.

The SpMV kernel is vectorized over blocks (NumPy einsum) and validated
against the CSR kernels in the test suite.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["BCSRMatrix", "bcsr_traffic_bytes", "csr_traffic_bytes"]


class BCSRMatrix:
    """Immutable r x c block-CSR matrix.

    ``block_ptr`` (block-rows + 1), ``block_index`` (block-column ids,
    int32), ``blocks`` (n_blocks x r x c dense values).
    """

    __slots__ = ("block_ptr", "block_index", "blocks", "r", "c", "n_rows", "n_cols", "nnz_stored")

    def __init__(
        self,
        block_ptr: np.ndarray,
        block_index: np.ndarray,
        blocks: np.ndarray,
        r: int,
        c: int,
        n_rows: int,
        n_cols: int,
    ) -> None:
        block_ptr = np.asarray(block_ptr, dtype=np.int64)
        block_index = np.asarray(block_index, dtype=np.int32)
        blocks = np.asarray(blocks, dtype=np.float64)
        if r <= 0 or c <= 0:
            raise ValueError(f"block shape must be positive, got {r}x{c}")
        n_block_rows = (n_rows + r - 1) // r
        if block_ptr.size != n_block_rows + 1:
            raise ValueError(
                f"block_ptr has {block_ptr.size} entries, expected {n_block_rows + 1}"
            )
        if blocks.shape != (block_index.size, r, c):
            raise ValueError(
                f"blocks shaped {blocks.shape}, expected ({block_index.size}, {r}, {c})"
            )
        if block_ptr[0] != 0 or block_ptr[-1] != block_index.size:
            raise ValueError("block_ptr must span [0, n_blocks]")
        self.block_ptr = block_ptr
        self.block_index = block_index
        self.blocks = blocks
        self.r = r
        self.c = c
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.nnz_stored = int(np.count_nonzero(blocks))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_csr(cls, a: CSRMatrix, r: int, c: int) -> "BCSRMatrix":
        """Tile a CSR matrix onto an r x c block grid (zero fill-in kept)."""
        if r <= 0 or c <= 0:
            raise ValueError(f"block shape must be positive, got {r}x{c}")
        n_block_rows = (a.n_rows + r - 1) // r
        rows_of = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
        brow = rows_of // r
        bcol = a.index.astype(np.int64) // c
        # Unique (brow, bcol) pairs in block-row-major order.
        key = brow * ((a.n_cols + c - 1) // c) + bcol
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        uniq_mask = np.empty(key_sorted.size, dtype=bool)
        if key_sorted.size:
            uniq_mask[0] = True
            uniq_mask[1:] = key_sorted[1:] != key_sorted[:-1]
        block_of_entry = np.cumsum(uniq_mask) - 1 if key_sorted.size else np.empty(0, np.int64)
        n_blocks = int(uniq_mask.sum()) if key_sorted.size else 0

        blocks = np.zeros((n_blocks, r, c))
        if key_sorted.size:
            local_r = (rows_of[order] % r).astype(np.int64)
            local_c = (a.index[order].astype(np.int64) % c)
            np.add.at(blocks, (block_of_entry, local_r, local_c), a.da[order])

        n_bcols = (a.n_cols + c - 1) // c
        uniq_keys = key_sorted[uniq_mask] if key_sorted.size else np.empty(0, np.int64)
        ubrow = uniq_keys // n_bcols
        ubcol = (uniq_keys % n_bcols).astype(np.int32)
        block_ptr = np.zeros(n_block_rows + 1, dtype=np.int64)
        counts = np.bincount(ubrow.astype(np.int64), minlength=n_block_rows)
        np.cumsum(counts, out=block_ptr[1:])
        return cls(block_ptr, ubcol, blocks, r, c, a.n_rows, a.n_cols)

    # -- properties ----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Stored r x c blocks."""
        return self.block_index.size

    @property
    def n_block_rows(self) -> int:
        """Rows of the block grid."""
        return self.block_ptr.size - 1

    def fill_ratio(self) -> float:
        """Stored cells / structural nonzeros (1.0 = perfect blocking)."""
        if self.nnz_stored == 0:
            return 1.0
        return self.n_blocks * self.r * self.c / self.nnz_stored

    # -- kernels ---------------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x over blocks (vectorized with a batched mat-vec)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = np.zeros(self.n_block_rows * self.r)
        if self.n_blocks:
            # Gather c-wide x slices per block: pad x to a block multiple.
            n_bcols = (self.n_cols + self.c - 1) // self.c
            x_pad = np.zeros(n_bcols * self.c)
            x_pad[: self.n_cols] = x
            x_blocks = x_pad.reshape(n_bcols, self.c)[self.block_index]
            partial = np.einsum("brc,bc->br", self.blocks, x_blocks)
            block_rows = np.repeat(
                np.arange(self.n_block_rows, dtype=np.int64), np.diff(self.block_ptr)
            )
            np.add.at(
                y.reshape(self.n_block_rows, self.r), block_rows, partial
            )
        return y[: self.n_rows]

    def to_csr(self) -> CSRMatrix:
        """Expand back to CSR, dropping the explicit zeros."""
        n_bcols = (self.n_cols + self.c - 1) // self.c
        rows_list, cols_list, vals_list = [], [], []
        for bi in range(self.n_blocks):
            brow = int(np.searchsorted(self.block_ptr, bi, side="right")) - 1
            rr, cc = np.nonzero(self.blocks[bi])
            rows_list.append(brow * self.r + rr)
            cols_list.append(self.block_index[bi] * self.c + cc)
            vals_list.append(self.blocks[bi][rr, cc])
        from .coo import COOMatrix

        if rows_list:
            rows = np.concatenate(rows_list)
            cols = np.concatenate(cols_list)
            vals = np.concatenate(vals_list)
            keep = (rows < self.n_rows) & (cols < self.n_cols)
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0)
        return COOMatrix(self.n_rows, self.n_cols, rows, cols, vals).to_csr()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BCSRMatrix {self.n_rows}x{self.n_cols} {self.r}x{self.c} "
            f"blocks={self.n_blocks} fill={self.fill_ratio():.2f}>"
        )


def csr_traffic_bytes(nnz: int, n_rows: int) -> int:
    """Matrix bytes one CSR SpMV streams: 12/nnz + 4/row ptr (+8 y)."""
    if nnz < 0 or n_rows < 0:
        raise ValueError("nnz and n_rows must be non-negative")
    return 12 * nnz + 12 * n_rows + 4


def bcsr_traffic_bytes(b: BCSRMatrix) -> int:
    """Matrix bytes one BCSR SpMV streams.

    Per block: 4 index bytes + 8*r*c value bytes; per block row: 4 ptr
    bytes; per row: 8 y bytes.  Compare against
    :func:`csr_traffic_bytes` to decide if blocking pays off.
    """
    return int(
        4 * b.n_blocks
        + 8 * b.n_blocks * b.r * b.c
        + 4 * (b.n_block_rows + 1)
        + 8 * b.n_rows
    )
