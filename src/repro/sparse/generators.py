"""Synthetic sparse-pattern generators.

The UFL matrices of Table I are not redistributable inside this
repository, so the testbed (:mod:`repro.sparse.suite`) synthesizes a
matrix per entry with the same size, density and *pattern family*.  The
families below span the locality spectrum the paper's studies exercise:

- :func:`banded` — FEM/structural style: nonzeros concentrated near the
  diagonal (good x-gather locality).  Stands in for ship_003, msc10848…
- :func:`block_diagonal` — dense diagonal blocks (excellent register/
  line reuse).  Stands in for crystk03, nd3k…
- :func:`stencil_2d` — 5-point grid operator (perfectly regular).
- :func:`random_uniform` — uniformly scattered columns (worst-case
  gather locality).  Stands in for sparsine, gupta3…
- :func:`power_law` — Zipf-distributed column popularity (circuit
  matrices: rajat*, nmos3…); a few hot columns cache well, the tail
  does not.

All generators are deterministic given a seed, vectorized, and return
:class:`~repro.sparse.csr.CSRMatrix`.  Duplicate coordinates created by
sampling are merged, so achieved nnz can land a few percent under the
request; the suite records achieved values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "GENERATOR_VERSION",
    "banded",
    "block_diagonal",
    "fem_blocks",
    "stencil_2d",
    "random_uniform",
    "power_law",
    "with_dense_rows",
]

#: bump whenever any generator's output for a given (params, seed)
#: changes — it keys the on-disk matrix cache (see
#: :func:`repro.sparse.suite.build_matrix`), so stale builds are
#: orphaned instead of silently reused.
GENERATOR_VERSION = 1


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _finalize(n_rows: int, n_cols: int, rows: np.ndarray, cols: np.ndarray, rng: np.random.Generator) -> CSRMatrix:
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return COOMatrix(n_rows, n_cols, rows, cols, vals).to_csr()


def banded(n: int, nnz_per_row: float, bandwidth: int, seed: Optional[int] = None) -> CSRMatrix:
    """Band matrix: each row's columns are drawn near the diagonal.

    ``bandwidth`` is the standard deviation (in columns) of the offset
    distribution; ~99% of nonzeros land within ±3*bandwidth of the
    diagonal.  The diagonal itself is always present.
    """
    if n <= 0 or nnz_per_row <= 0 or bandwidth < 1:
        raise ValueError("n, nnz_per_row must be positive; bandwidth >= 1")
    rng = _rng(seed)
    k = max(int(round(nnz_per_row)) - 1, 0)  # -1 for the guaranteed diagonal
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    offsets = np.round(rng.normal(0.0, bandwidth, size=rows.size)).astype(np.int64)
    cols = np.clip(rows + offsets, 0, n - 1)
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return _finalize(n, n, rows, cols, rng)


def block_diagonal(
    n: int,
    block_size: int,
    fill: float,
    seed: Optional[int] = None,
) -> CSRMatrix:
    """Dense-ish blocks along the diagonal with density ``fill``."""
    if n <= 0 or block_size <= 0:
        raise ValueError("n and block_size must be positive")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    rng = _rng(seed)
    n_blocks = (n + block_size - 1) // block_size
    cells = block_size * block_size
    # Sampling with replacement merges duplicates on CSR conversion, so
    # invert the expected-unique curve: s draws from M cells yield
    # ~M*(1 - exp(-s/M)) distinct entries; draw s = -M*ln(1 - fill) to
    # land on the requested density.
    target_fill = min(fill, 0.95)
    draws = -cells * np.log1p(-target_fill)
    per_block = max(int(round(draws)), block_size)
    starts = np.repeat(np.arange(n_blocks, dtype=np.int64) * block_size, per_block)
    r_local = rng.integers(0, block_size, size=starts.size)
    c_local = rng.integers(0, block_size, size=starts.size)
    rows = np.minimum(starts + r_local, n - 1)
    cols = np.minimum(starts + c_local, n - 1)
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return _finalize(n, n, rows, cols, rng)


def fem_blocks(
    n: int,
    block: int,
    nnz_per_row: float,
    bandwidth_blocks: Optional[int] = None,
    seed: Optional[int] = None,
) -> CSRMatrix:
    """FEM-style matrix of *fully dense* ``block x block`` tiles.

    Real structural matrices (ship_003, crystk03, nd3k…) store several
    degrees of freedom per mesh node, giving dense r x c sub-blocks —
    the structure register blocking (BCSR) exploits.  The block-level
    pattern is banded (each block row touches ``nnz_per_row / block``
    block columns near the diagonal); every selected block is fully
    dense.
    """
    if n <= 0 or block <= 0 or nnz_per_row <= 0:
        raise ValueError("n, block, nnz_per_row must be positive")
    rng = _rng(seed)
    n_brows = max(n // block, 1)
    blocks_per_row = max(int(round(nnz_per_row / block)), 1)
    # Default band width: FEM-like sqrt(n) spread, widened for very
    # dense block rows so the normal draws don't collapse onto each
    # other (dedupe would silently eat the density).
    bw = (
        bandwidth_blocks
        if bandwidth_blocks is not None
        else max(int(n_brows**0.5), blocks_per_row, 2)
    )
    # Block-level banded pattern (diagonal block always present).
    brows = np.repeat(np.arange(n_brows, dtype=np.int64), blocks_per_row - 1)
    offsets = np.round(rng.normal(0.0, bw, size=brows.size)).astype(np.int64)
    bcols = np.clip(brows + offsets, 0, n_brows - 1)
    diag = np.arange(n_brows, dtype=np.int64)
    brows = np.concatenate([brows, diag])
    bcols = np.concatenate([bcols, diag])
    # Dedupe block coordinates, then expand each to a dense tile.
    key = np.unique(brows * n_brows + bcols)
    brows = key // n_brows
    bcols = key % n_brows
    within = np.arange(block * block, dtype=np.int64)
    rr, cc = within // block, within % block
    rows = (brows[:, None] * block + rr[None, :]).ravel()
    cols = (bcols[:, None] * block + cc[None, :]).ravel()
    keep = (rows < n) & (cols < n)
    return _finalize(n, n, rows[keep], cols[keep], rng)


def stencil_2d(nx: int, ny: int, seed: Optional[int] = None) -> CSRMatrix:
    """5-point Laplacian-style stencil on an nx-by-ny grid (n = nx*ny rows)."""
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    rng = _rng(seed)
    n = nx * ny
    idx = np.arange(n, dtype=np.int64)
    gx, gy = idx % nx, idx // nx
    rows_list = [idx]
    cols_list = [idx]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        mask = (0 <= gx + dx) & (gx + dx < nx) & (0 <= gy + dy) & (gy + dy < ny)
        rows_list.append(idx[mask])
        cols_list.append(idx[mask] + dx + dy * nx)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _finalize(n, n, rows, cols, rng)


def random_uniform(n: int, nnz_per_row: float, seed: Optional[int] = None) -> CSRMatrix:
    """Uniformly scattered columns: the locality worst case."""
    if n <= 0 or nnz_per_row <= 0:
        raise ValueError("n and nnz_per_row must be positive")
    rng = _rng(seed)
    k = max(int(round(nnz_per_row)), 1)
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = rng.integers(0, n, size=rows.size)
    return _finalize(n, n, rows, cols, rng)


def power_law(
    n: int,
    nnz_per_row: float,
    alpha: float = 1.2,
    seed: Optional[int] = None,
) -> CSRMatrix:
    """Zipf-popular columns: column ``c`` drawn with p ~ (c+1)^-alpha.

    Column ids are shuffled so popularity is not spatially correlated
    with the diagonal (circuit netlists look like this).
    """
    if n <= 0 or nnz_per_row <= 0:
        raise ValueError("n and nnz_per_row must be positive")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = _rng(seed)
    k = max(int(round(nnz_per_row)), 1)
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    u = rng.uniform(size=rows.size)
    ranked = np.searchsorted(cdf, u)
    perm = rng.permutation(n)
    cols = perm[np.minimum(ranked, n - 1)]
    return _finalize(n, n, rows, cols, rng)


def with_dense_rows(
    base: CSRMatrix,
    n_dense_rows: int,
    row_fill: float,
    seed: Optional[int] = None,
) -> CSRMatrix:
    """Add a few nearly-dense rows to ``base`` (gupta/psmigr style).

    Dense rows create severe load imbalance under uniform-row
    partitioning; the balanced-nnz partitioner must handle them.
    """
    if n_dense_rows < 0 or not 0.0 < row_fill <= 1.0:
        raise ValueError("n_dense_rows >= 0 and 0 < row_fill <= 1 required")
    rng = _rng(seed)
    n = base.n_rows
    dense_rows = rng.choice(n, size=min(n_dense_rows, n), replace=False)
    k = max(int(row_fill * base.n_cols), 1)
    rows = np.repeat(dense_rows.astype(np.int64), k)
    cols = rng.integers(0, base.n_cols, size=rows.size)
    old_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.ptr))
    all_rows = np.concatenate([old_rows, rows])
    all_cols = np.concatenate([base.index.astype(np.int64), cols])
    all_vals = np.concatenate([base.da, rng.uniform(0.5, 1.5, size=rows.size)])
    return COOMatrix(n, base.n_cols, all_rows, all_cols, all_vals).to_csr()
