"""Minimal MatrixMarket I/O.

The UFL collection distributes matrices as MatrixMarket coordinate
files; this module reads/writes the ``matrix coordinate real
general|symmetric`` subset so users with access to the original Table I
matrices can run the study on the real data instead of the synthetic
stand-ins (``read_matrix_market`` → :class:`CSRMatrix`).
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

PathOrFile = Union[str, Path, TextIO]


def _open_read(src: PathOrFile):
    if isinstance(src, (str, Path)):
        return open(src, "r", encoding="ascii"), True
    return src, False


def read_matrix_market(src: PathOrFile) -> CSRMatrix:
    """Parse a MatrixMarket coordinate file into CSR.

    Supports ``real``/``integer``/``pattern`` fields and ``general`` /
    ``symmetric`` symmetries (symmetric entries are mirrored, diagonal
    not duplicated).  Raises ``ValueError`` on other variants.
    """
    fh, should_close = _open_read(src)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"not a MatrixMarket file: header {header!r}")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"malformed MatrixMarket header: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError(f"only 'matrix coordinate' supported, got {obj} {fmt}")
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())
        body = fh.read()
    finally:
        if should_close:
            fh.close()

    if field == "pattern":
        data = np.loadtxt(_io.StringIO(body), ndmin=2, usecols=(0, 1))
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
        vals = np.ones(rows.size)
    else:
        data = np.loadtxt(_io.StringIO(body), ndmin=2)
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
        vals = data[:, 2].astype(np.float64) if data.shape[1] > 2 else np.ones(rows.size)
    if rows.size != nnz:
        raise ValueError(f"header promised {nnz} entries, file has {rows.size}")
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols2 = np.concatenate([cols, data[:, 0].astype(np.int64)[off] - 1])
        vals = np.concatenate([vals, vals[off]])
        cols = cols2
    return COOMatrix(n_rows, n_cols, rows, cols, vals).to_csr()


def write_matrix_market(a: CSRMatrix, dst: Union[str, Path, TextIO]) -> None:
    """Write CSR as 'matrix coordinate real general' (1-based)."""
    own = isinstance(dst, (str, Path))
    fh = open(dst, "w", encoding="ascii") if own else dst
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{a.n_rows} {a.n_cols} {a.nnz}\n")
        rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
        for r, c, v in zip(rows + 1, a.index + 1, a.da):
            fh.write(f"{r} {c} {v:.17g}\n")
    finally:
        if own:
            fh.close()
