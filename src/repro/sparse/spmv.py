"""SpMV kernels: ``y = A @ x`` over CSR.

Three kernels, mirroring the paper:

- :func:`spmv_reference` — a literal transcription of the paper's
  Fig. 2 C loop.  O(nnz) Python; used as ground truth in tests.
- :func:`spmv` — vectorized NumPy production kernel.
- :func:`spmv_no_x_miss` — the Sec. IV-C diagnostic variant in which
  every ``x[index[j]]`` reads ``x[0]`` instead, turning the irregular
  gather into a perfectly local access.  Numerically it computes
  ``y[i] = x[0] * sum_j da[i,j]``; its purpose is purely to isolate the
  cost of gather misses when run on the SCC model.

All kernels accept a row range so a unit of execution can process its
partition block while indexing the global ``x``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .csr import CSRMatrix

__all__ = ["spmv_reference", "spmv", "spmv_no_x_miss", "spmv_row_range"]


def _check_x(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.n_cols,):
        raise ValueError(f"x has shape {x.shape}, expected ({a.n_cols},)")
    return x


def spmv_reference(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Row-loop CSR SpMV exactly as in the paper's Fig. 2.

    Pure Python; intended for validation on small matrices.
    """
    x = _check_x(a, x)
    y = np.zeros(a.n_rows)
    for i in range(a.n_rows):
        acc = 0.0
        for j in range(a.ptr[i], a.ptr[i + 1]):
            acc += a.da[j] * x[a.index[j]]
        y[i] = acc
    return y


def spmv_row_range(
    a: CSRMatrix,
    x: np.ndarray,
    row_start: int,
    row_stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized SpMV over rows ``[row_start, row_stop)``.

    Writes into ``out[row_start:row_stop]`` when ``out`` is given (the
    parallel runtime hands each UE the shared ``y``), otherwise returns
    a fresh array of length ``row_stop - row_start``.

    Row sums are computed with a prefix-sum difference, which is robust
    to empty rows (``np.add.reduceat`` is not).
    """
    x = _check_x(a, x)
    if not (0 <= row_start <= row_stop <= a.n_rows):
        raise ValueError(f"bad row range [{row_start}, {row_stop})")
    lo, hi = a.ptr[row_start], a.ptr[row_stop]
    products = a.da[lo:hi] * x[a.index[lo:hi]]
    csum = np.concatenate(([0.0], np.cumsum(products)))
    seg = a.ptr[row_start : row_stop + 1] - lo
    block = csum[seg[1:]] - csum[seg[:-1]]
    if out is None:
        return block
    if out.shape != (a.n_rows,):
        raise ValueError(f"out has shape {out.shape}, expected ({a.n_rows},)")
    out[row_start:row_stop] = block
    return out


def spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized full-matrix CSR SpMV."""
    return spmv_row_range(a, x, 0, a.n_rows)


def spmv_no_x_miss(
    a: CSRMatrix,
    x: np.ndarray,
    row_start: int = 0,
    row_stop: Optional[int] = None,
) -> np.ndarray:
    """The paper's 'no x misses' kernel: every gather reads ``x[0]``.

    Returned values equal ``x[0] * row_sum(A)`` — intentionally *not*
    the true product.  The kernel exists to quantify the performance
    cost of the irregular access pattern (paper Fig. 8).
    """
    x = _check_x(a, x)
    stop = a.n_rows if row_stop is None else row_stop
    if not (0 <= row_start <= stop <= a.n_rows):
        raise ValueError(f"bad row range [{row_start}, {stop})")
    lo, hi = a.ptr[row_start], a.ptr[stop]
    products = a.da[lo:hi] * x[0]
    csum = np.concatenate(([0.0], np.cumsum(products)))
    seg = a.ptr[row_start : stop + 1] - lo
    return csum[seg[1:]] - csum[seg[:-1]]
