"""Row-wise matrix partitioning for parallel SpMV.

The paper's scheme (Sec. IV): split the matrix row-wise so every unit
of execution receives (as close as possible) the same number of
nonzeros.  :func:`partition_rows_balanced` implements that greedy
prefix split; :func:`partition_rows_uniform` (equal row counts) exists
as a baseline for the load-balance ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["RowPartition", "partition_rows_balanced", "partition_rows_uniform"]


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row ranges, one per unit of execution."""

    n_rows: int
    bounds: Tuple[int, ...]  # len == n_parts + 1, bounds[0] == 0, bounds[-1] == n_rows

    def __post_init__(self) -> None:
        b = self.bounds
        if len(b) < 2 or b[0] != 0 or b[-1] != self.n_rows:
            raise ValueError(f"bounds must span [0, {self.n_rows}], got {b}")
        if any(b[i] > b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("bounds must be non-decreasing")

    @property
    def n_parts(self) -> int:
        """Number of UE row ranges."""
        return len(self.bounds) - 1

    def part(self, k: int) -> Tuple[int, int]:
        """(start, stop) row range of part k."""
        if not 0 <= k < self.n_parts:
            raise IndexError(f"part {k} out of range [0, {self.n_parts})")
        return self.bounds[k], self.bounds[k + 1]

    def ranges(self) -> List[Tuple[int, int]]:
        """All (start, stop) ranges in rank order."""
        return [self.part(k) for k in range(self.n_parts)]

    def part_nnz(self, a: CSRMatrix) -> np.ndarray:
        """Nonzeros assigned to each part."""
        b = np.asarray(self.bounds, dtype=np.int64)
        return (a.ptr[b[1:]] - a.ptr[b[:-1]]).astype(np.int64)

    def imbalance(self, a: CSRMatrix) -> float:
        """max(part nnz) / mean(part nnz); 1.0 is perfect balance."""
        nnz = self.part_nnz(a)
        mean = nnz.mean()
        return float(nnz.max() / mean) if mean > 0 else 1.0


def partition_rows_balanced(a: CSRMatrix, n_parts: int) -> RowPartition:
    """Split rows so each part holds ~nnz/n_parts nonzeros (paper's scheme).

    Row boundaries are found by bisecting the ``ptr`` prefix sums at the
    ideal cut points, so the split is deterministic and O(P log N).
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > max(a.n_rows, 1):
        raise ValueError(f"cannot split {a.n_rows} rows into {n_parts} parts")
    targets = (np.arange(1, n_parts) * (a.nnz / n_parts)).astype(np.float64)
    cuts = np.searchsorted(a.ptr[1:-1], targets, side="left") + 1 if a.n_rows > 1 else np.array([], dtype=np.int64)
    bounds = [0]
    for c in cuts.tolist():
        bounds.append(max(min(int(c), a.n_rows), bounds[-1]))
    bounds.append(a.n_rows)
    # Monotonic repair for degenerate matrices (many empty rows).
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return RowPartition(a.n_rows, tuple(bounds))


def partition_rows_uniform(a: CSRMatrix, n_parts: int) -> RowPartition:
    """Equal-row-count split (ignores nnz balance)."""
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > max(a.n_rows, 1):
        raise ValueError(f"cannot split {a.n_rows} rows into {n_parts} parts")
    bounds = tuple(int(round(k * a.n_rows / n_parts)) for k in range(n_parts + 1))
    return RowPartition(a.n_rows, bounds)
