"""Distributed conjugate-gradient solver on the simulated SCC.

The paper motivates SpMV as "one of the most important computational
kernels in scientific and engineering applications"; the application
that actually runs it in anger is a Krylov solver.  This module builds
the canonical one — CG for symmetric positive-definite systems — as an
RCCE program, so the whole substrate stack is exercised end to end:

- the matrix is row-partitioned with balanced nonzeros (paper scheme);
- every iteration each UE computes its SpMV block (really, NumPy),
  charges the calibrated per-nonzero cycle cost to the simulated clock,
  allgathers the direction vector through the MPB model and allreduces
  the dot products;
- the result is numerically verified against a sequential solve, and
  the simulated time breaks down into compute vs communication.

:func:`make_spd` turns any square testbed matrix into a symmetric
diagonally-dominant (hence SPD) system so every suite entry can be
solved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.mapping import distance_reduction_mapping
from ..rcce.runtime import RCCERuntime
from ..scc.chip import CONF0, SCCConfig
from ..scc.params import DEFAULT_TIMING, P54CTimingParams
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix
from ..sparse.partition import RowPartition, partition_rows_balanced
from ..sparse.spmv import spmv_row_range

__all__ = ["make_spd", "CGResult", "parallel_cg"]


def make_spd(a: CSRMatrix, shift: float = 1.0) -> CSRMatrix:
    """Symmetrize and diagonally dominate: ``(A + A^T)/2 + (rowsum+shift) I``.

    The result is strictly diagonally dominant with positive diagonal,
    hence symmetric positive definite — CG converges on it for any
    structural pattern in the testbed.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("make_spd requires a square matrix")
    if shift <= 0:
        raise ValueError(f"shift must be positive, got {shift}")
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), np.diff(a.ptr))
    cols = a.index.astype(np.int64)
    # (A + A^T) / 2
    sym_rows = np.concatenate([rows, cols])
    sym_cols = np.concatenate([cols, rows])
    sym_vals = np.concatenate([a.da, a.da]) * 0.5
    half = COOMatrix(a.n_rows, a.n_cols, sym_rows, sym_cols, sym_vals).to_csr()
    # Dominant diagonal: rowsum of |entries| + shift.
    abs_sum = np.zeros(a.n_rows)
    hr = np.repeat(np.arange(half.n_rows, dtype=np.int64), np.diff(half.ptr))
    np.add.at(abs_sum, hr, np.abs(half.da))
    diag = np.arange(a.n_rows, dtype=np.int64)
    all_rows = np.concatenate([hr, diag])
    all_cols = np.concatenate([half.index.astype(np.int64), diag])
    all_vals = np.concatenate([half.da, abs_sum + shift])
    return COOMatrix(a.n_rows, a.n_cols, all_rows, all_cols, all_vals).to_csr()


@dataclass(frozen=True)
class CGResult:
    """Outcome of one parallel CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    makespan: float          #: simulated seconds, slowest UE
    n_ues: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "converged" if self.converged else "NOT converged"
        return (
            f"<CGResult {state} in {self.iterations} iters, "
            f"|r|={self.residual_norm:.3e}, t={self.makespan * 1e3:.3f} ms>"
        )


def _cg_ue(comm, a, b, partition: RowPartition, tol, max_iter, cycles_per_nnz, out):
    """One UE of the distributed CG (RCCE program)."""
    lo, hi = partition.part(comm.ue)
    nnz_mine = int(a.ptr[hi] - a.ptr[lo])

    x = np.zeros(hi - lo)
    r = b[lo:hi].copy()          # r = b - A*0
    p_local = r.copy()
    rs_old = yield from comm.allreduce(float(r @ r))
    b_norm2 = yield from comm.allreduce(float(b[lo:hi] @ b[lo:hi]))
    threshold = tol * tol * max(b_norm2, 1e-300)

    iterations = 0
    converged = rs_old <= threshold
    while not converged and iterations < max_iter:
        # Assemble the full direction vector (allgather through MPB).
        blocks = yield from comm.gather(p_local, root=0)
        p_full = np.concatenate(blocks) if comm.ue == 0 else None
        p_full = yield from comm.bcast(p_full, root=0)

        # Local SpMV block + its simulated cost.
        ap = spmv_row_range(a, p_full, lo, hi)
        yield from comm.compute_cycles(cycles_per_nnz * nnz_mine)

        pap = yield from comm.allreduce(float(p_full[lo:hi] @ ap))
        alpha = rs_old / pap
        x += alpha * p_full[lo:hi]
        r -= alpha * ap
        rs_new = yield from comm.allreduce(float(r @ r))
        p_local = r + (rs_new / rs_old) * p_local
        rs_old = rs_new
        iterations += 1
        converged = rs_new <= threshold

    out[comm.ue] = (x, iterations, np.sqrt(rs_old), converged)
    yield from comm.barrier()
    return iterations


def parallel_cg(
    a: CSRMatrix,
    b: np.ndarray,
    n_ues: int = 8,
    tol: float = 1e-8,
    max_iter: int = 500,
    config: SCCConfig = CONF0,
    core_map: Optional[Sequence[int]] = None,
    timing: P54CTimingParams = DEFAULT_TIMING,
) -> CGResult:
    """Solve ``A x = b`` (A symmetric positive definite) on the model.

    Returns the assembled solution, iteration count, residual and the
    simulated parallel runtime.  Raises if A is not square or shapes
    mismatch; non-convergence is reported, not raised.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("CG requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.n_rows,):
        raise ValueError(f"b has shape {b.shape}, expected ({a.n_rows},)")
    if n_ues < 1:
        raise ValueError(f"n_ues must be >= 1, got {n_ues}")
    if tol <= 0 or max_iter < 1:
        raise ValueError("tol must be positive and max_iter >= 1")

    partition = partition_rows_balanced(a, n_ues)
    cores = list(core_map) if core_map is not None else distance_reduction_mapping(n_ues)
    runtime = RCCERuntime(cores, config=config)
    # Per-nnz cycle cost: the calibrated base + L2-hit share (CG reuses
    # its vectors, so the gather mostly hits cache; a deliberately
    # simple charge — the SpMV study uses the full model).
    cycles_per_nnz = timing.base_cycles_per_nnz + 0.4 * timing.l2_hit_cycles

    out: List = [None] * n_ues
    results = runtime.run(_cg_ue, a, b, partition, tol, max_iter, cycles_per_nnz, out)
    makespan = runtime.makespan(results)

    x = np.concatenate([out[ue][0] for ue in range(n_ues)])
    iterations = out[0][1]
    residual = float(out[0][2])
    converged = bool(out[0][3])
    return CGResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=converged,
        makespan=makespan,
        n_ues=n_ues,
    )
