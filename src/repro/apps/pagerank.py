"""Distributed PageRank on the simulated SCC.

The second canonical SpMV consumer after Krylov solvers: power
iteration on a scale-free graph.  Where CG exercises FEM-style matrices
(good gather locality), PageRank exercises the power-law patterns the
testbed's circuit matrices approximate — hub columns that cache well
and a long scattered tail that does not.

- :func:`graph_matrix` builds the column-stochastic transition matrix
  of a Barabási–Albert graph (via networkx) in our CSR format;
- :func:`parallel_pagerank` runs damped power iteration as an RCCE
  program (row-partitioned, allgather per sweep, allreduce for the
  dangling mass and the convergence norm);
- results are verified against ``networkx.pagerank`` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from ..core.mapping import distance_reduction_mapping
from ..rcce.runtime import RCCERuntime
from ..scc.chip import CONF0, SCCConfig
from ..scc.params import DEFAULT_TIMING
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix
from ..sparse.partition import partition_rows_balanced
from ..sparse.spmv import spmv_row_range

__all__ = ["graph_matrix", "PageRankResult", "parallel_pagerank"]


def graph_matrix(n: int, attach_m: int = 3, seed: int = 0) -> CSRMatrix:
    """Transition matrix ``P`` of a Barabási–Albert graph.

    ``P[i, j] = 1/outdeg(j)`` for each edge ``j -> i`` (columns sum to
    one except for dangling nodes), so damped PageRank iterates
    ``x <- d P x + teleport``.  The BA graph is undirected; each edge
    contributes both directions, so there are no dangling nodes here —
    the solver still handles them for general inputs.
    """
    if n <= attach_m:
        raise ValueError(f"n ({n}) must exceed attach_m ({attach_m})")
    g = nx.barabasi_albert_graph(n, attach_m, seed=seed)
    src = np.array([u for u, v in g.edges()] + [v for u, v in g.edges()], dtype=np.int64)
    dst = np.array([v for u, v in g.edges()] + [u for u, v in g.edges()], dtype=np.int64)
    outdeg = np.bincount(src, minlength=n).astype(np.float64)
    vals = 1.0 / outdeg[src]
    # Row i collects from columns j: entry (dst, src).
    return COOMatrix(n, n, dst, src, vals).to_csr()


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of one parallel PageRank solve."""
    ranks: np.ndarray
    iterations: int
    delta: float             #: final L1 change between sweeps
    converged: bool
    makespan: float
    n_ues: int


def _pagerank_ue(comm, p, partition, damping, tol, max_iter, cycles_per_nnz, out):
    lo, hi = partition.part(comm.ue)
    n = p.n_rows
    nnz_mine = int(p.ptr[hi] - p.ptr[lo])

    # Column sums identify dangling columns once, replicated cheaply.
    x_local = np.full(hi - lo, 1.0 / n)
    col_sums = np.zeros(n)
    np.add.at(col_sums, p.index, p.da)
    dangling = col_sums < 1e-12

    iterations = 0
    delta = np.inf
    while delta > tol and iterations < max_iter:
        blocks = yield from comm.gather(x_local, root=0)
        x_full = np.concatenate(blocks) if comm.ue == 0 else None
        x_full = yield from comm.bcast(x_full, root=0)

        dangling_mass = float(x_full[dangling].sum())
        y = spmv_row_range(p, x_full, lo, hi)
        yield from comm.compute_cycles(cycles_per_nnz * nnz_mine)

        x_new = damping * (y + dangling_mass / n) + (1.0 - damping) / n
        local_delta = float(np.abs(x_new - x_full[lo:hi]).sum())
        delta = yield from comm.allreduce(local_delta)
        x_local = x_new
        iterations += 1

    out[comm.ue] = (x_local, iterations, delta)
    yield from comm.barrier()
    return iterations


def parallel_pagerank(
    p: CSRMatrix,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    n_ues: int = 8,
    config: SCCConfig = CONF0,
    core_map: Optional[Sequence[int]] = None,
) -> PageRankResult:
    """Damped power iteration for ``x = d P x + (1-d)/n`` on the model."""
    if p.n_rows != p.n_cols:
        raise ValueError("PageRank requires a square transition matrix")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if tol <= 0 or max_iter < 1 or n_ues < 1:
        raise ValueError("tol positive, max_iter >= 1, n_ues >= 1 required")

    partition = partition_rows_balanced(p, n_ues)
    cores = list(core_map) if core_map is not None else distance_reduction_mapping(n_ues)
    runtime = RCCERuntime(cores, config=config)
    timing = DEFAULT_TIMING
    cycles_per_nnz = timing.base_cycles_per_nnz + 0.4 * timing.l2_hit_cycles

    out: List = [None] * n_ues
    results = runtime.run(
        _pagerank_ue, p, partition, damping, tol, max_iter, cycles_per_nnz, out
    )
    ranks = np.concatenate([out[ue][0] for ue in range(n_ues)])
    iterations = out[0][1]
    delta = float(out[0][2])
    return PageRankResult(
        ranks=ranks,
        iterations=iterations,
        delta=delta,
        converged=delta <= tol,
        makespan=runtime.makespan(results),
        n_ues=n_ues,
    )
