"""Applications built on the substrate.

- :mod:`~repro.apps.cg` — distributed conjugate gradient, the canonical
  SpMV consumer, run as an RCCE program on the simulated chip.
- :mod:`~repro.apps.pagerank` — damped power iteration on scale-free
  graphs: the power-law gather workload.
"""

from .cg import CGResult, make_spd, parallel_cg
from .pagerank import PageRankResult, graph_matrix, parallel_pagerank

__all__ = [
    "CGResult",
    "make_spd",
    "parallel_cg",
    "PageRankResult",
    "graph_matrix",
    "parallel_pagerank",
]
